"""Aggregator unit tests: pending-until-ack accounting and SecAgg flush."""

import numpy as np
import pytest

from repro.actors.aggregator import Aggregator
from repro.actors.kernel import Actor, ActorSystem
from repro.actors import messages as msg
from repro.core.config import SecAggConfig
from repro.sim.event_loop import EventLoop


class Sink(Actor):
    def __init__(self):
        self.messages = []

    def receive(self, sender, message):
        self.messages.append(message)


def make_harness(secagg=None):
    loop = EventLoop()
    system = ActorSystem(loop, np.random.default_rng(0), mean_latency_s=0.0)
    master = Sink()
    master_ref = system.spawn(master, "master")
    agg = Aggregator(
        round_id=1,
        task_id="t",
        master=master_ref,
        secagg=secagg or SecAggConfig(enabled=False),
        rng=np.random.default_rng(1),
    )
    agg_ref = system.spawn(agg, "agg")
    return loop, system, master, agg, agg_ref


def report(device_id, vec, weight=10.0):
    return msg.DeviceReport(
        device_id=device_id,
        round_id=1,
        delta_vector=np.asarray(vec, dtype=float),
        weight=weight,
        num_examples=int(weight),
        train_metrics={},
        upload_nbytes=80,
    )


def test_report_held_pending_until_ack():
    loop, system, master, agg, agg_ref = make_harness()
    device = Sink()
    device_ref = system.spawn(device, "device-7")
    agg.register_device(7, device_ref)
    system.tell(agg_ref, report(7, [1.0, 2.0]))
    loop.run()
    # Forwarded to the master, but not yet folded into the sum.
    assert len(master.messages) == 1
    partial = agg.flush(accepted_ids=set())
    assert partial.device_count == 0  # never accepted
    assert partial.delta_sum is None


def test_ack_accept_folds_into_sum():
    loop, system, master, agg, agg_ref = make_harness()
    device = Sink()
    device_ref = system.spawn(device, "device-7")
    agg.register_device(7, device_ref)
    system.tell(agg_ref, report(7, [1.0, 2.0], weight=5.0))
    loop.run()
    agg.ack_device(7, accepted=True)
    loop.run()
    # Device got the ack message.
    assert any(
        isinstance(m, msg.ReportAck) and m.accepted for m in device.messages
    )
    partial = agg.flush(accepted_ids=set())
    assert partial.device_count == 1
    np.testing.assert_array_equal(partial.delta_sum, [1.0, 2.0])
    assert partial.weight_sum == 5.0


def test_ack_reject_discards():
    loop, system, master, agg, agg_ref = make_harness()
    device = Sink()
    device_ref = system.spawn(device, "device-7")
    agg.register_device(7, device_ref)
    system.tell(agg_ref, report(7, [1.0, 2.0]))
    loop.run()
    agg.ack_device(7, accepted=False)
    partial = agg.flush(accepted_ids=set())
    assert partial.device_count == 0


def test_flush_resolves_in_flight_pending_with_accepted_set():
    loop, system, master, agg, agg_ref = make_harness()
    for d in (1, 2, 3):
        agg.register_device(d, system.spawn(Sink(), f"device-{d}"))
    system.tell(agg_ref, report(1, [1.0], weight=1.0))
    system.tell(agg_ref, report(2, [2.0], weight=1.0))
    system.tell(agg_ref, report(3, [4.0], weight=1.0))
    loop.run()
    # Master accepted 1 and 3 but the acks never reached the aggregator.
    partial = agg.flush(accepted_ids={1, 3})
    assert partial.device_count == 2
    np.testing.assert_array_equal(partial.delta_sum, [5.0])


def test_duplicate_and_post_drop_reports_ignored():
    loop, system, master, agg, agg_ref = make_harness()
    agg._devices = {4: None}
    system.tell(
        agg_ref,
        msg.DeviceDropped(device_id=4, round_id=1, reason="eligibility"),
    )
    loop.run()
    system.tell(agg_ref, report(4, [9.0]))
    loop.run()
    partial = agg.flush(accepted_ids={4})
    assert partial.device_count == 0  # dropped devices cannot report
    # The drop was forwarded to the master exactly once.
    drops = [m for m in master.messages if isinstance(m, msg.DeviceDropped)]
    assert len(drops) == 1


def test_wrong_round_ignored():
    loop, system, master, agg, agg_ref = make_harness()
    agg._devices = {5: None}
    bad = msg.DeviceReport(
        device_id=5, round_id=99, delta_vector=np.ones(2), weight=1.0,
        num_examples=1, train_metrics={}, upload_nbytes=8,
    )
    system.tell(agg_ref, bad)
    loop.run()
    assert master.messages == []


def test_secagg_flush_recovers_exact_sum():
    config = SecAggConfig(enabled=True, group_size=4, threshold_fraction=0.6)
    loop, system, master, agg, agg_ref = make_harness(secagg=config)
    rng = np.random.default_rng(3)
    vectors = {d: rng.normal(size=6) for d in range(6)}
    agg._devices = {d: None for d in range(6)}
    for d, vec in vectors.items():
        system.tell(agg_ref, report(d, vec, weight=float(d + 1)))
    loop.run()
    for d in vectors:
        agg.ack_device(d, accepted=True)
    partial = agg.flush(accepted_ids=set(vectors))
    assert partial.device_count == 6
    assert partial.secagg_metrics is not None
    expected = sum(vectors.values())
    np.testing.assert_allclose(partial.delta_sum, expected, atol=1e-3)
    assert partial.weight_sum == pytest.approx(sum(range(1, 7)), abs=1e-3)


def test_secagg_flush_with_non_reporting_devices():
    """Forwarded-but-silent devices enter the protocol as dropouts."""
    config = SecAggConfig(enabled=True, group_size=4, threshold_fraction=0.6)
    loop, system, master, agg, agg_ref = make_harness(secagg=config)
    rng = np.random.default_rng(4)
    agg._devices = {d: None for d in range(8)}
    vectors = {d: rng.normal(size=5) for d in range(6)}  # 2 never report
    for d, vec in vectors.items():
        system.tell(agg_ref, report(d, vec))
        loop.run()
        agg.ack_device(d, accepted=True)
    partial = agg.flush(accepted_ids=set(vectors))
    assert partial.device_count == 6
    np.testing.assert_allclose(
        partial.delta_sum, sum(vectors.values()), atol=1e-3
    )


# -- buffered fold path -------------------------------------------------------

def accept_all(agg, ids):
    for device_id in ids:
        agg.ack_device(device_id, accepted=True)


def test_fold_buffered_and_functional_byte_identical():
    from repro.nn.parameters import functional_math

    rng = np.random.default_rng(3)
    vectors = {i: rng.normal(size=32) for i in range(6)}
    sums = {}
    for label, buffered in (("buffered", True), ("functional", False)):
        loop, system, master, agg, agg_ref = make_harness()
        with functional_math() if not buffered else _noop():
            for device_id, vec in vectors.items():
                system.tell(agg_ref, report(device_id, vec, weight=device_id + 1.0))
            loop.run()
            accept_all(agg, vectors)
            partial = agg.flush(accepted_ids=set(vectors))
        sums[label] = (np.asarray(partial.delta_sum), partial.weight_sum,
                       partial.device_count)
    np.testing.assert_array_equal(sums["buffered"][0], sums["functional"][0])
    assert sums["buffered"][1] == sums["functional"][1]
    assert sums["buffered"][2] == sums["functional"][2]


class _noop:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def test_copy_pending_stages_report_vectors():
    """With ``copy_pending`` the aggregator owns staged copies: mutating
    (reusing) the reporter's buffer after upload cannot corrupt the sum,
    and resolved stagings return to the per-round scratch pool."""
    loop, system, master, agg, agg_ref = make_harness()
    agg.copy_pending = True
    shared = np.ones(8)
    system.tell(agg_ref, report(1, shared))
    loop.run()
    shared[:] = 999.0  # reporter reuses its buffer before the ack resolves
    agg.ack_device(1, accepted=True)
    partial = agg.flush(accepted_ids=set())
    np.testing.assert_array_equal(partial.delta_sum, np.ones(8))
    assert len(agg._staging_pool) == 1
    # Rejected reports also return their staging scratch to the pool.
    loop2, system2, master2, agg2, agg_ref2 = make_harness()
    agg2.copy_pending = True
    system2.tell(agg_ref2, report(4, np.ones(8)))
    loop2.run()
    agg2.ack_device(4, accepted=False)
    assert len(agg2._staging_pool) == 1
    system2.tell(agg_ref2, report(5, np.full(8, 2.0)))
    loop2.run()
    assert len(agg2._staging_pool) == 0  # scratch reused, not re-allocated


def test_flush_secagg_stacked_augmentation_matches_per_device_concat():
    """The (n, dim+1) stacked augmentation must feed the protocol exactly
    what the per-device np.concatenate construction did."""
    rng = np.random.default_rng(4)
    secagg = SecAggConfig(enabled=True, group_size=4, threshold_fraction=0.6)
    loop, system, master, agg, agg_ref = make_harness(secagg=secagg)
    vectors = {i: rng.normal(size=12) for i in range(4)}
    for device_id, vec in vectors.items():
        device = Sink()
        agg.register_device(device_id, system.spawn(device, f"d{device_id}"))
        system.tell(agg_ref, report(device_id, vec, weight=device_id + 5.0))
    loop.run()
    accept_all(agg, vectors)
    partial = agg.flush(accepted_ids=set(vectors))
    assert partial.device_count == 4
    # The decoded sum approximates sum of vectors and weights (quantized).
    expected_sum = np.sum(list(vectors.values()), axis=0)
    np.testing.assert_allclose(partial.delta_sum, expected_sum, atol=1e-3)
    expected_weight = sum(i + 5.0 for i in vectors)
    assert abs(partial.weight_sum - expected_weight) < 1e-3
