"""Actor kernel: delivery, lifecycle, supervision, failure injection."""

import numpy as np

from repro.actors.kernel import Actor, ActorSystem, DeathNotice
from repro.sim.event_loop import EventLoop


class Recorder(Actor):
    def __init__(self):
        self.received = []
        self.started = False
        self.stopped_crashed = None

    def on_start(self):
        self.started = True

    def on_stop(self, crashed):
        self.stopped_crashed = crashed

    def receive(self, sender, message):
        self.received.append((sender, message))


def make_system():
    loop = EventLoop()
    system = ActorSystem(loop, np.random.default_rng(0), mean_latency_s=0.001)
    return loop, system


def test_spawn_runs_on_start():
    loop, system = make_system()
    actor = Recorder()
    ref = system.spawn(actor, "r")
    assert actor.started
    assert ref.alive


def test_message_delivery_with_latency():
    loop, system = make_system()
    actor = Recorder()
    ref = system.spawn(actor, "r")
    system.tell(ref, "hello")
    assert actor.received == []  # not yet delivered
    loop.run()
    assert actor.received == [(None, "hello")]
    assert loop.now > 0


def test_messages_to_same_actor_preserve_order_with_equal_latency():
    loop = EventLoop()
    system = ActorSystem(loop, np.random.default_rng(0), mean_latency_s=0.0)
    actor = Recorder()
    ref = system.spawn(actor, "r")
    for i in range(10):
        system.tell(ref, i)
    loop.run()
    assert [m for _, m in actor.received] == list(range(10))


def test_messages_to_dead_actor_dropped():
    loop, system = make_system()
    actor = Recorder()
    ref = system.spawn(actor, "r")
    system.tell(ref, "x")
    system.stop(ref)
    loop.run()
    assert actor.received == []
    assert system.messages_dropped == 1
    assert not ref.alive


def test_crash_notifies_watchers():
    loop, system = make_system()
    watcher, watched = Recorder(), Recorder()
    watcher_ref = system.spawn(watcher, "watcher")
    watched_ref = system.spawn(watched, "watched")
    system.watch(watcher_ref, watched_ref)
    system.crash(watched_ref)
    loop.run()
    (sender, notice), = watcher.received
    assert isinstance(notice, DeathNotice)
    assert notice.crashed
    assert notice.ref == watched_ref
    assert watched.stopped_crashed is True
    assert system.crashes_injected == 1


def test_graceful_stop_notice_not_crashed():
    loop, system = make_system()
    watcher, watched = Recorder(), Recorder()
    watcher_ref = system.spawn(watcher, "w")
    watched_ref = system.spawn(watched, "x")
    system.watch(watcher_ref, watched_ref)
    system.stop(watched_ref)
    loop.run()
    (_, notice), = watcher.received
    assert not notice.crashed
    assert watched.stopped_crashed is False


def test_watching_already_dead_actor_fires_immediately():
    loop, system = make_system()
    watcher = Recorder()
    watcher_ref = system.spawn(watcher, "w")
    doomed_ref = system.spawn(Recorder(), "d")
    system.crash(doomed_ref)
    system.watch(watcher_ref, doomed_ref)
    loop.run()
    assert len(watcher.received) == 1


def test_scheduled_work_skipped_after_death():
    loop, system = make_system()

    class Ticker(Actor):
        def __init__(self):
            self.ticks = 0

        def on_start(self):
            self.schedule(1.0, self.tick)

        def tick(self):
            self.ticks += 1
            self.schedule(1.0, self.tick)

        def receive(self, sender, message):
            pass

    ticker = Ticker()
    ref = system.spawn(ticker, "t")
    loop.run(until=3.5)
    assert ticker.ticks == 3
    system.crash(ref)
    loop.run(until=10.0)
    assert ticker.ticks == 3  # guarded schedule stops after death


def test_termination_hook_runs():
    loop, system = make_system()
    released = []
    system.on_actor_terminated(released.append)
    ref = system.spawn(Recorder(), "r")
    system.stop(ref)
    assert released == [ref]
