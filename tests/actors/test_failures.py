"""Failure modes (Sec. 4.4): every crash scenario keeps the system alive.

"In all failure cases the system will continue to make progress, either by
completing the current round or restarting from the results of the
previously committed round."
"""

import numpy as np

from repro import FLSystem, FLSystemConfig, TaskConfig, RoundConfig
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.population import PopulationConfig


def build_system(seed=7):
    config = FLSystemConfig(
        seed=seed,
        population=PopulationConfig(num_devices=250),
        num_selectors=3,
        job=JobSchedule(1200.0, 0.5),
    )
    system = FLSystem(config)
    task = TaskConfig(
        task_id="ftest/train",
        population_name="ftest",
        round_config=RoundConfig(
            target_participants=15, selection_timeout_s=60, reporting_timeout_s=120
        ),
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    system.deploy([task], model.init(np.random.default_rng(0)))
    return system


def run_until_active_round(system, max_s=7200.0):
    """Advance until a master aggregator is live; returns its ref."""
    start = system.loop.now
    while system.loop.now - start < max_s:
        system.loop.run_for(5.0)
        coordinator = system.actors.actor_of(system.coordinator_ref)
        if coordinator is not None and coordinator.active_master is not None:
            return coordinator.active_master
    raise AssertionError("no round ever started")


def test_master_aggregator_crash_fails_round_but_system_recovers():
    system = build_system()
    master_ref = run_until_active_round(system)
    committed_before = len(system.committed_rounds)
    system.actors.crash(master_ref)
    system.run_for(2 * 3600)
    # The crashed round never committed, but later rounds did.
    assert len(system.committed_rounds) > committed_before
    assert not master_ref.alive


def test_aggregator_crash_loses_only_its_devices():
    system = build_system()
    master_ref = run_until_active_round(system)
    master = system.actors.actor_of(master_ref)
    # Crash one leaf aggregator; the master and round may still finish.
    agg_ref = master.aggregators[0]
    system.actors.crash(agg_ref)
    system.run_for(2 * 3600)
    assert len(system.committed_rounds) >= 1
    assert not agg_ref.alive


def test_selector_crash_only_loses_its_connections():
    system = build_system()
    system.run_for(1800)
    victim = system.selectors[0]
    system.actors.crash(victim)
    committed_before = len(system.committed_rounds)
    system.run_for(2 * 3600)
    assert len(system.committed_rounds) > committed_before


def test_coordinator_crash_respawned_exactly_once():
    system = build_system()
    system.run_for(1800)
    old_ref = system.coordinator_ref
    system.actors.crash(old_ref)
    system.run_for(3600)
    # A new coordinator owns the population lock.
    owner = system.locks.owner_of("ftest" and "coordinator/ftest")
    assert owner is not None
    assert owner != old_ref
    assert owner.alive
    # Exactly one respawn occurred for this death (one respawn lock).
    respawn_keys = [
        k
        for k in system.locks._locks
        if k.startswith("respawn/ftest/")
    ]
    assert len(respawn_keys) == 1


def test_system_makes_progress_after_coordinator_crash():
    system = build_system()
    system.run_for(1800)
    before = len(system.committed_rounds)
    system.actors.crash(system.coordinator_ref)
    system.run_for(3 * 3600)
    assert len(system.committed_rounds) > before


def test_round_counter_monotonic_across_coordinator_respawn():
    system = build_system()
    system.run_for(1800)
    system.actors.crash(system.coordinator_ref)
    system.run_for(2 * 3600)
    rounds = [c.round_number for c in system.store.history("ftest")]
    assert rounds == sorted(rounds)
    assert len(set(rounds)) == len(rounds)
