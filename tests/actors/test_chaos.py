"""Chaos test: random server-actor crashes during live operation.

Sec. 4.4's summary claim — "In all failure cases the system will continue
to make progress, either by completing the current round or restarting
from the results of the previously committed round" — under sustained,
randomized failure injection across every server actor type.
"""

import numpy as np
import pytest

from repro import FLSystem, FLSystemConfig, RoundConfig, TaskConfig
from repro.device.actor import DeviceActor
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.population import PopulationConfig


@pytest.fixture(scope="module")
def chaotic_system():
    config = FLSystemConfig(
        seed=41,
        population=PopulationConfig(num_devices=300),
        num_selectors=3,
        job=JobSchedule(900.0, 0.5),
    )
    system = FLSystem(config)
    task = TaskConfig(
        task_id="chaos/train",
        population_name="chaos",
        round_config=RoundConfig(
            target_participants=12, selection_timeout_s=60,
            reporting_timeout_s=120,
        ),
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    system.deploy([task], model.init(np.random.default_rng(0)))

    chaos_rng = np.random.default_rng(99)

    # Every ~7 simulated minutes, crash one random server-side actor.
    # Selectors have no in-model supervisor (production restarts those
    # processes via the cluster manager, which is outside the paper's
    # actor model), so the last living selector is spared.
    from repro.actors.selector import Selector

    for _ in range(40):
        system.run_for(float(chaos_rng.uniform(300.0, 540.0)))
        candidates = []
        living_selectors = [
            ref
            for ref in system.actors.living_actors()
            if isinstance(system.actors.actor_of(ref), Selector)
        ]
        for ref in system.actors.living_actors():
            actor = system.actors.actor_of(ref)
            if isinstance(actor, DeviceActor):
                continue
            if isinstance(actor, Selector) and len(living_selectors) <= 1:
                continue
            candidates.append(ref)
        if candidates:
            victim = candidates[int(chaos_rng.integers(len(candidates)))]
            system.actors.crash(victim)
    system.run_for(2 * 3600)  # recovery tail
    return system


def test_progress_despite_crashes(chaotic_system):
    system = chaotic_system
    assert system.actors.crashes_injected >= 30
    assert len(system.committed_rounds) >= 5


def test_checkpoint_history_stays_monotonic(chaotic_system):
    rounds = [c.round_number for c in chaotic_system.store.history("chaos")]
    assert rounds == sorted(rounds)
    assert len(set(rounds)) == len(rounds)


def test_single_coordinator_ownership_survives(chaotic_system):
    """The lock service guarantees one live owner per population."""
    owner = chaotic_system.locks.owner_of("coordinator/chaos")
    assert owner is not None
    assert owner.alive


def test_commit_count_matches_round_results(chaotic_system):
    system = chaotic_system
    assert system.store.write_count == len(system.committed_rounds) + 1


def test_device_fleet_unharmed(chaotic_system):
    """Server chaos never kills devices (they live at the edge)."""
    alive_devices = sum(
        1
        for ref in chaotic_system.actors.living_actors()
        if isinstance(chaotic_system.actors.actor_of(ref), DeviceActor)
    )
    assert alive_devices == 300
