"""Chaos tests: the deterministic fault-injection plane under sustained load.

Sec. 4.4's summary claim — "In all failure cases the system will continue
to make progress, either by completing the current round or restarting
from the results of the previously committed round" — driven through
``FLFleet.builder().faults(FaultPlan(...))``: randomized crashes across
every server actor kind, device-edge message drop/delay, checkpoint write
failures, and mid-session device interrupts, all drawn from pinned
``faults/...`` streams.  Because the plane is deterministic, chaos runs
are *reproducible*: same seed + same plan => byte-identical RunReport,
and a snapshot taken mid-chaos restores to a byte-identical tail.
"""

import pickle

import numpy as np
import pytest

from repro import FLFleet, FaultPlan, RoundConfig, TaskConfig
from repro.device.actor import DeviceActor
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.network import NetworkModel
from repro.sim.population import PopulationConfig
from repro.system import (
    ActorCrashSchedule,
    CheckpointFaultConfig,
    DeviceInterruptSchedule,
    MessageFaultConfig,
)

CHAOS_PLAN = FaultPlan(
    crashes=(
        ActorCrashSchedule("selector", mean_interval_s=3600.0),
        ActorCrashSchedule("coordinator", mean_interval_s=5400.0),
        ActorCrashSchedule("master_aggregator", mean_interval_s=2700.0),
        ActorCrashSchedule("aggregator", mean_interval_s=2700.0),
    ),
    messages=MessageFaultConfig(drop_prob=0.01, delay_prob=0.02, delay_mean_s=2.0),
    checkpoint=CheckpointFaultConfig(write_failure_prob=0.25),
    device_interrupts=DeviceInterruptSchedule(mean_interval_s=1800.0),
)

CHAOS_HOURS = 8.0


def build_chaotic_fleet(seed=41, faults=CHAOS_PLAN, num_devices=300):
    task = TaskConfig(
        task_id="chaos/train",
        population_name="chaos",
        round_config=RoundConfig(
            target_participants=12, selection_timeout_s=60,
            reporting_timeout_s=120,
        ),
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    builder = (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=num_devices))
        .selectors(3)
        .job(JobSchedule(900.0, 0.5))
        .population("chaos", tasks=[task], model=model.init(np.random.default_rng(0)))
    )
    if faults is not None:
        builder.faults(faults)
    return builder.build()


@pytest.fixture(scope="module")
def chaotic_fleet():
    fleet = build_chaotic_fleet()
    fleet.run_for(CHAOS_HOURS * 3600.0)
    return fleet


@pytest.fixture(scope="module")
def chaos_report(chaotic_fleet):
    return chaotic_fleet.report()


def test_progress_despite_chaos(chaotic_fleet):
    assert chaotic_fleet.actors.crashes_injected >= 10
    assert len(chaotic_fleet.committed_rounds) >= 5


def test_recovery_ledger_populated(chaotic_fleet, chaos_report):
    rec = chaos_report.recovery
    # Every injected crash is attributed to an actor kind...
    assert rec.faults_total == chaotic_fleet.actors.crashes_injected
    assert rec.faults_by_kind["selector"] >= 1
    # ...and every crashed Selector came back (the cluster manager path).
    assert rec.selector_respawns == rec.faults_by_kind["selector"]
    assert rec.messages_dropped >= 1
    assert rec.messages_delayed >= 1
    assert rec.device_interrupts >= 1
    # Checkpoint ledger agrees with the store's own accounting.
    assert rec.checkpoint_write_faults == chaotic_fleet.store.failed_write_count
    assert rec.checkpoint_write_faults >= 1
    assert rec.rounds_committed == len(chaotic_fleet.committed_rounds)
    # Sec. 4.4 quantified: every crash was recovered from by a later
    # commit, in finite simulated time.
    assert rec.recoveries >= 1
    assert 0.0 < rec.mean_recovery_latency_s <= rec.max_recovery_latency_s


def test_dashboard_mirrors_ledger(chaotic_fleet, chaos_report):
    rec = chaos_report.recovery
    counters = chaotic_fleet.dashboard.counters()
    assert counters.get("recovery/selector_respawns", 0) == rec.selector_respawns
    assert counters.get("faults/messages_dropped", 0) == rec.messages_dropped
    assert counters.get("faults/checkpoint_writes", 0) == rec.checkpoint_write_faults


def test_checkpoint_history_stays_monotonic(chaotic_fleet):
    rounds = [c.round_number for c in chaotic_fleet.store.history("chaos")]
    assert rounds == sorted(rounds)
    assert len(set(rounds)) == len(rounds)


def test_single_coordinator_ownership_survives(chaotic_fleet):
    """The lock service guarantees one live owner per population."""
    owner = chaotic_fleet.locks.owner_of("coordinator/chaos")
    assert owner is not None
    assert owner.alive


def test_commit_count_matches_round_results(chaotic_fleet):
    """The Sec. 4.2 invariant under write faults + retries: exactly one
    *durable* write per committed round (plus the round-0 initialize);
    failed attempts land in ``failed_write_count`` only."""
    store = chaotic_fleet.store
    assert store.write_count == len(chaotic_fleet.committed_rounds) + 1
    assert store.failed_write_count >= 1


def test_device_fleet_unharmed(chaotic_fleet):
    """Server chaos never kills devices (they live at the edge)."""
    alive_devices = sum(
        1
        for ref in chaotic_fleet.actors.living_actors()
        if isinstance(chaotic_fleet.actors.actor_of(ref), DeviceActor)
    )
    assert alive_devices == 300


def test_all_selectors_alive_after_chaos(chaotic_fleet):
    """The cluster manager restores the full Selector tier — no
    spare-the-last-selector special casing needed anymore."""
    assert len(chaotic_fleet.selectors) == 3
    assert all(ref.alive for ref in chaotic_fleet.selectors)


def test_chaos_is_deterministic(chaos_report):
    """Same seed + same FaultPlan => byte-identical RunReport."""
    rerun = build_chaotic_fleet()
    rerun.run_for(CHAOS_HOURS * 3600.0)
    report = rerun.report()
    assert report == chaos_report
    assert pickle.dumps(report) == pickle.dumps(chaos_report)


def test_snapshot_mid_chaos_restores_byte_identically(tmp_path):
    """Freezing a fleet mid-chaos freezes the *remaining* fault schedule:
    the restored fleet replays the tail byte-identically, and both match
    the uninterrupted run."""
    path = tmp_path / "chaos.snap"
    interrupted = build_chaotic_fleet(num_devices=150)
    interrupted.run_for(2 * 3600.0)
    interrupted.snapshot(path)
    interrupted.run_for(2 * 3600.0)
    report_a = interrupted.report()

    restored = FLFleet.restore(path)
    restored.run_for(2 * 3600.0)
    report_b = restored.report()
    assert report_a == report_b
    assert pickle.dumps(report_a) == pickle.dumps(report_b)

    uninterrupted = build_chaotic_fleet(num_devices=150)
    uninterrupted.run_for(4 * 3600.0)
    assert uninterrupted.report() == report_a


def test_disabled_plane_is_inert():
    """No plan => no plane: no hooks installed, no ``faults/...`` stream
    ever touched, and the recovery ledger reports all zeros."""
    fleet = build_chaotic_fleet(faults=None)
    fleet.run_for(3600.0)
    assert fleet.fault_plane is None
    assert fleet.actors.message_faults is None
    assert fleet.store.write_fault is None
    assert not any(name.startswith("faults/") for name in fleet.rngs._cache)
    rec = fleet.report().recovery
    assert rec.faults_total == 0
    assert rec.selector_respawns == 0
    assert rec.messages_dropped == rec.messages_delayed == 0
    assert rec.upload_retries == 0
    assert rec.checkpoint_write_faults == 0


def test_upload_retry_recovers_transient_failures():
    """A zero-rate FaultPlan still turns on bounded-retry recovery: with a
    lossy network, devices retry uploads with backoff, the meter counts
    the re-sent bytes, and the ledger surfaces the totals."""
    task = TaskConfig(
        task_id="retry/train",
        population_name="retry",
        round_config=RoundConfig(
            target_participants=12, selection_timeout_s=60,
            reporting_timeout_s=240,
        ),
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    network = NetworkModel(transfer_failure_prob=0.2)
    fleet = (
        FLFleet.builder()
        .seed(7)
        .devices(PopulationConfig(num_devices=200))
        .selectors(2)
        .job(JobSchedule(900.0, 0.5))
        .network(network)
        .faults(FaultPlan())  # no injection; retry policies only
        .population("retry", tasks=[task], model=model.init(np.random.default_rng(0)))
        .build()
    )
    fleet.run_for(4 * 3600.0)
    rec = fleet.report().recovery
    assert rec.upload_retries >= 1
    assert rec.upload_retries == sum(
        d.health.upload_retries for d in fleet.devices
    )
    assert rec.upload_retries_exhausted == sum(
        d.health.upload_retries_exhausted for d in fleet.devices
    )
    meter = network.meter
    assert meter.retry_count == rec.upload_retries
    assert meter.retried_bytes > 0
    # Retried-then-delivered sessions end in an ERROR-but-recovered shape,
    # not a drop: transient errors outnumber exhausted ones.
    assert rec.upload_retries > rec.upload_retries_exhausted
