"""Chaos tests: the deterministic fault-injection plane under sustained load.

Sec. 4.4's summary claim — "In all failure cases the system will continue
to make progress, either by completing the current round or restarting
from the results of the previously committed round" — driven through
``FLFleet.builder().faults(FaultPlan(...))``: randomized crashes across
every server actor kind, device-edge message drop/delay, checkpoint write
failures, and mid-session device interrupts, all drawn from pinned
``faults/...`` streams.  Because the plane is deterministic, chaos runs
are *reproducible*: same seed + same plan => byte-identical RunReport,
and a snapshot taken mid-chaos restores to a byte-identical tail.
"""

import pickle

import numpy as np
import pytest

from repro import FLFleet, FaultPlan, RoundConfig, TaskConfig
from repro.core.config import SecAggConfig
from repro.device.actor import DeviceActor
from repro.device.runtime import ComputeModel
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.network import NetworkModel
from repro.sim.population import PopulationConfig
from repro.system import (
    ActorCrashSchedule,
    CheckpointFaultConfig,
    DeviceInterruptSchedule,
    MessageFaultConfig,
)

CHAOS_PLAN = FaultPlan(
    crashes=(
        ActorCrashSchedule("selector", mean_interval_s=3600.0),
        ActorCrashSchedule("coordinator", mean_interval_s=5400.0),
        ActorCrashSchedule("master_aggregator", mean_interval_s=2700.0),
        ActorCrashSchedule("aggregator", mean_interval_s=2700.0),
    ),
    messages=MessageFaultConfig(drop_prob=0.01, delay_prob=0.02, delay_mean_s=2.0),
    checkpoint=CheckpointFaultConfig(write_failure_prob=0.25),
    device_interrupts=DeviceInterruptSchedule(mean_interval_s=1800.0),
)

CHAOS_HOURS = 8.0


def build_chaotic_fleet(seed=41, faults=CHAOS_PLAN, num_devices=300):
    task = TaskConfig(
        task_id="chaos/train",
        population_name="chaos",
        round_config=RoundConfig(
            target_participants=12, selection_timeout_s=60,
            reporting_timeout_s=120,
        ),
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    builder = (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=num_devices))
        .selectors(3)
        .job(JobSchedule(900.0, 0.5))
        .population("chaos", tasks=[task], model=model.init(np.random.default_rng(0)))
    )
    if faults is not None:
        builder.faults(faults)
    return builder.build()


@pytest.fixture(scope="module")
def chaotic_fleet():
    fleet = build_chaotic_fleet()
    fleet.run_for(CHAOS_HOURS * 3600.0)
    return fleet


@pytest.fixture(scope="module")
def chaos_report(chaotic_fleet):
    return chaotic_fleet.report()


def test_progress_despite_chaos(chaotic_fleet):
    assert chaotic_fleet.actors.crashes_injected >= 10
    assert len(chaotic_fleet.committed_rounds) >= 5


def test_recovery_ledger_populated(chaotic_fleet, chaos_report):
    rec = chaos_report.recovery
    # Every injected crash is attributed to an actor kind...
    assert rec.faults_total == chaotic_fleet.actors.crashes_injected
    assert rec.faults_by_kind["selector"] >= 1
    # ...and every crashed Selector came back (the cluster manager path).
    assert rec.selector_respawns == rec.faults_by_kind["selector"]
    assert rec.messages_dropped >= 1
    assert rec.messages_delayed >= 1
    assert rec.device_interrupts >= 1
    # Checkpoint ledger agrees with the store's own accounting.
    assert rec.checkpoint_write_faults == chaotic_fleet.store.failed_write_count
    assert rec.checkpoint_write_faults >= 1
    assert rec.rounds_committed == len(chaotic_fleet.committed_rounds)
    # Sec. 4.4 quantified: every crash was recovered from by a later
    # commit, in finite simulated time.
    assert rec.recoveries >= 1
    assert 0.0 < rec.mean_recovery_latency_s <= rec.max_recovery_latency_s


def test_dashboard_mirrors_ledger(chaotic_fleet, chaos_report):
    rec = chaos_report.recovery
    counters = chaotic_fleet.dashboard.counters()
    assert counters.get("recovery/selector_respawns", 0) == rec.selector_respawns
    assert counters.get("faults/messages_dropped", 0) == rec.messages_dropped
    assert counters.get("faults/checkpoint_writes", 0) == rec.checkpoint_write_faults


def test_checkpoint_history_stays_monotonic(chaotic_fleet):
    rounds = [c.round_number for c in chaotic_fleet.store.history("chaos")]
    assert rounds == sorted(rounds)
    assert len(set(rounds)) == len(rounds)


def test_single_coordinator_ownership_survives(chaotic_fleet):
    """The lock service guarantees one live owner per population."""
    owner = chaotic_fleet.locks.owner_of("coordinator/chaos")
    assert owner is not None
    assert owner.alive


def test_commit_count_matches_round_results(chaotic_fleet):
    """The Sec. 4.2 invariant under write faults + retries: exactly one
    *durable* write per committed round (plus the round-0 initialize);
    failed attempts land in ``failed_write_count`` only."""
    store = chaotic_fleet.store
    assert store.write_count == len(chaotic_fleet.committed_rounds) + 1
    assert store.failed_write_count >= 1


def test_device_fleet_unharmed(chaotic_fleet):
    """Server chaos never kills devices (they live at the edge)."""
    alive_devices = sum(
        1
        for ref in chaotic_fleet.actors.living_actors()
        if isinstance(chaotic_fleet.actors.actor_of(ref), DeviceActor)
    )
    assert alive_devices == 300


def test_all_selectors_alive_after_chaos(chaotic_fleet):
    """The cluster manager restores the full Selector tier — no
    spare-the-last-selector special casing needed anymore."""
    assert len(chaotic_fleet.selectors) == 3
    assert all(ref.alive for ref in chaotic_fleet.selectors)


def test_chaos_is_deterministic(chaos_report):
    """Same seed + same FaultPlan => byte-identical RunReport."""
    rerun = build_chaotic_fleet()
    rerun.run_for(CHAOS_HOURS * 3600.0)
    report = rerun.report()
    assert report == chaos_report
    assert pickle.dumps(report) == pickle.dumps(chaos_report)


def test_snapshot_mid_chaos_restores_byte_identically(tmp_path):
    """Freezing a fleet mid-chaos freezes the *remaining* fault schedule:
    the restored fleet replays the tail byte-identically, and both match
    the uninterrupted run."""
    path = tmp_path / "chaos.snap"
    interrupted = build_chaotic_fleet(num_devices=150)
    interrupted.run_for(2 * 3600.0)
    interrupted.snapshot(path)
    interrupted.run_for(2 * 3600.0)
    report_a = interrupted.report()

    restored = FLFleet.restore(path)
    restored.run_for(2 * 3600.0)
    report_b = restored.report()
    assert report_a == report_b
    assert pickle.dumps(report_a) == pickle.dumps(report_b)

    uninterrupted = build_chaotic_fleet(num_devices=150)
    uninterrupted.run_for(4 * 3600.0)
    assert uninterrupted.report() == report_a


def test_disabled_plane_is_inert():
    """No plan => no plane: no hooks installed, no ``faults/...`` stream
    ever touched, and the recovery ledger reports all zeros."""
    fleet = build_chaotic_fleet(faults=None)
    fleet.run_for(3600.0)
    assert fleet.fault_plane is None
    assert fleet.actors.message_faults is None
    assert fleet.store.write_fault is None
    assert not any(name.startswith("faults/") for name in fleet.rngs._cache)
    rec = fleet.report().recovery
    assert rec.faults_total == 0
    assert rec.selector_respawns == 0
    assert rec.messages_dropped == rec.messages_delayed == 0
    assert rec.upload_retries == 0
    assert rec.checkpoint_write_faults == 0


# -- control-plane sharding under chaos (ISSUE 10) --------------------------------

SHARDED_CHAOS_PLAN = FaultPlan(
    crashes=(
        ActorCrashSchedule("shard_aggregator", mean_interval_s=600.0),
        ActorCrashSchedule("selector", mean_interval_s=5400.0),
    ),
)


def build_sharded_chaotic_fleet(
    seed=43,
    faults=SHARDED_CHAOS_PLAN,
    shards=2,
    min_fraction=0.8,
    secagg_group=None,
):
    round_config = RoundConfig(
        target_participants=12,
        min_participant_fraction=min_fraction,
        selection_timeout_s=60,
        reporting_timeout_s=300,
    )
    secagg = (
        SecAggConfig(enabled=True, group_size=secagg_group)
        if secagg_group is not None
        else SecAggConfig()
    )
    task = TaskConfig(
        task_id="shardchaos/train",
        population_name="shardchaos",
        round_config=round_config,
        secagg=secagg,
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    builder = (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=300))
        .selectors(4)
        .selector_shards(shards)
        .job(JobSchedule(900.0, 0.5))
        # A realistically slow compute model keeps rounds (and their
        # shard-aggregator trees) in flight for minutes of simulated
        # time, so the fixed-cadence crash stream actually lands on live
        # victims; with the default near-instant trainer the tree exists
        # for only a few seconds per round.
        .compute(ComputeModel(examples_per_second=5.0))
        .population(
            "shardchaos", tasks=[task], model=model.init(np.random.default_rng(0))
        )
    )
    if faults is not None:
        builder.faults(faults)
    return builder.build()


def test_shard_aggregator_crashes_are_injected_and_healed():
    fleet = build_sharded_chaotic_fleet()
    fleet.run_for(CHAOS_HOURS * 3600.0)
    rec = fleet.report().recovery
    crashed = rec.faults_by_kind.get("shard_aggregator", 0)
    assert crashed >= 1
    # Every crash either healed (delayed respawn adopting the same
    # leaves) or cost exactly its own shard's fold — never more.
    assert rec.shard_aggregator_respawns >= 1
    assert rec.shard_aggregator_respawns + rec.shard_fold_aborts <= crashed
    # Sec. 4.4's bar: progress despite the chaos.
    assert len(fleet.committed_rounds) >= 3
    counters = fleet.dashboard.counters()
    assert (
        counters.get("recovery/shard_aggregator_respawns", 0)
        == rec.shard_aggregator_respawns
    )
    assert counters.get("recovery/shard_fold_aborts", 0) == rec.shard_fold_aborts


def test_sharded_chaos_is_deterministic():
    def run():
        fleet = build_sharded_chaotic_fleet()
        fleet.run_for(4 * 3600.0)
        return fleet.report()

    report_a, report_b = run(), run()
    assert report_a == report_b
    assert pickle.dumps(report_a) == pickle.dumps(report_b)


def _run_until_sharded_round(fleet, name="shardchaos", cap_hours=6.0):
    """Step simulated time until a round is in flight with live shard
    aggregators and at least one accepted report; returns the master."""
    runtime = fleet.lifecycle.active[name]
    for _ in range(int(cap_hours * 3600 / 15)):
        fleet.run_for(15.0)
        ref = fleet.lifecycle._coordinator_ref(runtime)
        coordinator = fleet.actors.actor_of(ref) if ref is not None else None
        if coordinator is None or coordinator.active_master is None:
            continue
        master = fleet.actors.actor_of(coordinator.active_master)
        if (
            master is not None
            and master.shard_aggregators
            and master.state.completed_count >= 1
        ):
            return master
    raise AssertionError("no sharded round reached reporting in time")


def test_crashed_shard_aggregator_aborts_only_its_shard_fold():
    """The failure-isolation bar: a shard aggregator still down when its
    round folds costs that shard's partial and nothing else — the other
    shards' reports commit the round."""
    # SecAgg with small groups gives the round several leaves, so the
    # tree gets multiple shard nodes and "the other shards" is nonempty;
    # a low min-participant fraction lets the round commit without the
    # crashed shard's devices.
    fleet = build_sharded_chaotic_fleet(
        faults=None, min_fraction=0.25, secagg_group=6
    )
    master = _run_until_sharded_round(fleet)
    assert len(master.shard_aggregators) >= 2
    round_id = master.round_id
    # Pin the heal far past the fold: the crash must still be open when
    # the round closes.
    master.shard_restart_delay_s = 1e9
    fleet.actors.crash(master.shard_aggregators[0])
    fleet.run_for(2 * 3600.0)
    rec = fleet.report().recovery
    assert rec.shard_fold_aborts == 1  # exactly the crashed shard
    assert rec.shard_aggregator_respawns == 0
    result = next(r for r in fleet.round_results if r.round_id == round_id)
    # The round closed with the surviving shards' contributions.
    assert result.completed_count >= 1
    # Later rounds are untouched: fresh trees, full folds.
    later = [r for r in fleet.round_results if r.round_id > round_id]
    assert any(r.committed for r in later)


def test_respawned_shard_aggregator_recovers_the_fold():
    """The healing path: with the default restart delay the replacement
    node adopts the same leaves before the round folds, so the crash
    costs nothing — no fold abort, same commit."""
    fleet = build_sharded_chaotic_fleet(
        faults=None, min_fraction=0.25, secagg_group=6
    )
    master = _run_until_sharded_round(fleet)
    round_id = master.round_id
    fleet.actors.crash(master.shard_aggregators[-1])
    fleet.run_for(2 * 3600.0)
    rec = fleet.report().recovery
    assert rec.shard_aggregator_respawns == 1
    assert rec.shard_fold_aborts == 0
    result = next(r for r in fleet.round_results if r.round_id == round_id)
    assert result.committed


def test_upload_retry_recovers_transient_failures():
    """A zero-rate FaultPlan still turns on bounded-retry recovery: with a
    lossy network, devices retry uploads with backoff, the meter counts
    the re-sent bytes, and the ledger surfaces the totals."""
    task = TaskConfig(
        task_id="retry/train",
        population_name="retry",
        round_config=RoundConfig(
            target_participants=12, selection_timeout_s=60,
            reporting_timeout_s=240,
        ),
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    network = NetworkModel(transfer_failure_prob=0.2)
    fleet = (
        FLFleet.builder()
        .seed(7)
        .devices(PopulationConfig(num_devices=200))
        .selectors(2)
        .job(JobSchedule(900.0, 0.5))
        .network(network)
        .faults(FaultPlan())  # no injection; retry policies only
        .population("retry", tasks=[task], model=model.init(np.random.default_rng(0)))
        .build()
    )
    fleet.run_for(4 * 3600.0)
    rec = fleet.report().recovery
    assert rec.upload_retries >= 1
    assert rec.upload_retries == sum(
        d.health.upload_retries for d in fleet.devices
    )
    assert rec.upload_retries_exhausted == sum(
        d.health.upload_retries_exhausted for d in fleet.devices
    )
    meter = network.meter
    assert meter.retry_count == rec.upload_retries
    assert meter.retried_bytes > 0
    # Retried-then-delivered sessions end in an ERROR-but-recovered shape,
    # not a drop: transient errors outnumber exhausted ones.
    assert rec.upload_retries > rec.upload_retries_exhausted
