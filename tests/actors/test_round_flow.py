"""Integration: full rounds through the actor stack with a real fleet."""

import numpy as np
import pytest

from repro import FLSystem, FLSystemConfig, TaskConfig, RoundConfig
from repro.actors.coordinator import CoordinatorConfig
from repro.analytics.session_shapes import classify_shape
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.population import PopulationConfig


def build_system(
    seed=3, devices=250, target=15, job_interval=1200.0, **coordinator_kwargs
):
    config = FLSystemConfig(
        seed=seed,
        population=PopulationConfig(num_devices=devices),
        num_selectors=2,
        job=JobSchedule(job_interval, 0.5),
        coordinator=CoordinatorConfig(**coordinator_kwargs)
        if coordinator_kwargs
        else CoordinatorConfig(),
    )
    system = FLSystem(config)
    task = TaskConfig(
        task_id="itest/train",
        population_name="itest",
        round_config=RoundConfig(
            target_participants=target,
            selection_timeout_s=60,
            reporting_timeout_s=120,
        ),
    )
    model = LogisticRegression(input_dim=6, n_classes=3)
    params = model.init(np.random.default_rng(0))
    system.deploy([task], params)
    return system, params


def test_rounds_commit_and_model_advances():
    system, initial = build_system()
    system.run_for(2 * 3600)
    committed = system.committed_rounds
    assert len(committed) >= 5
    assert not system.global_model().allclose(initial)
    # Exactly one persistent write per committed round, plus the init.
    assert system.store.write_count == len(committed) + 1


def test_completed_counts_hit_target():
    system, _ = build_system(target=10)
    system.run_for(2 * 3600)
    for result in system.committed_rounds:
        assert result.completed_count >= 10 * 0.8
        assert result.selected_count <= int(np.ceil(10 * 1.3))


def test_session_shapes_match_table_one_structure():
    system, _ = build_system()
    system.run_for(3 * 3600)
    shapes = system.session_shapes()
    total = sum(shapes.values())
    assert total > 50
    success = shapes.get("-v[]+^", 0) / total
    rejected = shapes.get("-v[]+#", 0) / total
    # Paper: 75% success, 22% rejected.  Generous bands for a small sim.
    assert success > 0.5
    assert 0.05 < rejected < 0.45
    assert success > rejected


def test_every_shape_classifiable():
    system, _ = build_system()
    system.run_for(3600)
    for shape in system.session_shapes():
        assert classify_shape(shape) in {
            "success",
            "upload_rejected",
            "interrupted",
            "network_issue",
            "model_issue",
            "error",
            "incomplete",
        }


def test_download_traffic_dominates_upload():
    """Fig. 9: plan+model down vs compressed update up."""
    system, _ = build_system()
    system.run_for(2 * 3600)
    meter = system.config.network.meter
    assert meter.downloaded_bytes > meter.uploaded_bytes


def test_drop_rate_in_plausible_band():
    system, _ = build_system()
    system.run_for(3 * 3600)
    summary = system.operational_summary()
    assert 0.0 <= summary["mean_drop_rate"] < 0.3


def test_non_pipelined_round_rate_is_lower():
    """Sec. 4.3: overlapping selection with configuration/reporting raises
    round frequency.  Needs abundant device supply so the pool refills
    faster than rounds complete."""
    kwargs = dict(seed=11, devices=500, target=10, job_interval=400.0)
    pipelined, _ = build_system(pipelining=True, **kwargs)
    gapped, _ = build_system(
        pipelining=False, inter_round_gap_s=300.0, **kwargs
    )
    pipelined.run_for(2 * 3600)
    gapped.run_for(2 * 3600)
    assert len(pipelined.committed_rounds) > 1.3 * len(gapped.committed_rounds)


def test_deploy_twice_rejected():
    system, params = build_system()
    with pytest.raises(RuntimeError, match="already deployed"):
        system.deploy(
            [TaskConfig(task_id="x", population_name="itest")], params
        )


def test_fleet_sampler_records_device_states():
    system, _ = build_system()
    system.run_for(3600)
    participating = system.dashboard.series("devices/participating")
    waiting = system.dashboard.series("devices/waiting")
    assert len(participating) > 10
    assert max(waiting.values) > 0
