"""SGD semantics: plain step, momentum accumulation, weight decay."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, SGDConfig
from repro.nn.parameters import Parameters


def p(val):
    return Parameters({"w": np.array([val])})


def test_plain_sgd_step():
    opt = SGD(SGDConfig(learning_rate=0.1))
    updated = opt.step(p(1.0), p(2.0))
    assert updated["w"][0] == pytest.approx(1.0 - 0.1 * 2.0)


def test_step_is_functional():
    params = p(1.0)
    SGD(SGDConfig(learning_rate=0.1)).step(params, p(1.0))
    assert params["w"][0] == 1.0


def test_momentum_accumulates():
    opt = SGD(SGDConfig(learning_rate=1.0, momentum=0.5))
    params = p(0.0)
    params = opt.step(params, p(1.0))   # v=1, w=-1
    assert params["w"][0] == pytest.approx(-1.0)
    params = opt.step(params, p(1.0))   # v=1.5, w=-2.5
    assert params["w"][0] == pytest.approx(-2.5)


def test_weight_decay_adds_to_gradient():
    opt = SGD(SGDConfig(learning_rate=1.0, weight_decay=0.1))
    updated = opt.step(p(10.0), p(0.0))
    assert updated["w"][0] == pytest.approx(10.0 - 1.0 * (0.1 * 10.0))


def test_reset_clears_velocity():
    opt = SGD(SGDConfig(learning_rate=1.0, momentum=0.9))
    opt.step(p(0.0), p(1.0))
    opt.reset()
    updated = opt.step(p(0.0), p(1.0))
    assert updated["w"][0] == pytest.approx(-1.0)  # no inherited velocity


@pytest.mark.parametrize(
    "kwargs",
    [
        {"learning_rate": 0.0},
        {"learning_rate": -1.0},
        {"momentum": 1.0},
        {"weight_decay": -0.1},
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ValueError):
        SGD(SGDConfig(**kwargs))
