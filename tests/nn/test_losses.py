"""Loss correctness: values and gradients against finite differences."""

import numpy as np
import pytest

from repro.nn.losses import l2_regularization, softmax, softmax_cross_entropy


def test_softmax_rows_sum_to_one(rng):
    logits = rng.normal(size=(7, 5)) * 10
    probs = softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0)
    assert (probs >= 0).all()


def test_softmax_is_shift_invariant(rng):
    logits = rng.normal(size=(3, 4))
    np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


def test_cross_entropy_uniform_logits():
    logits = np.zeros((4, 8))
    labels = np.array([0, 1, 2, 3])
    loss, _ = softmax_cross_entropy(logits, labels)
    assert loss == pytest.approx(np.log(8))


def test_cross_entropy_gradient_finite_difference(rng):
    logits = rng.normal(size=(5, 4))
    labels = rng.integers(0, 4, size=5)
    _, grad = softmax_cross_entropy(logits.copy(), labels)
    eps = 1e-6
    for i in range(5):
        for j in range(4):
            bumped = logits.copy()
            bumped[i, j] += eps
            up, _ = softmax_cross_entropy(bumped, labels)
            bumped[i, j] -= 2 * eps
            down, _ = softmax_cross_entropy(bumped, labels)
            fd = (up - down) / (2 * eps)
            assert grad[i, j] == pytest.approx(fd, abs=1e-5)


def test_cross_entropy_batch_mismatch():
    with pytest.raises(ValueError, match="batch mismatch"):
        softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))


def test_l2_regularization_value_and_grad():
    arrays = [np.array([3.0, 4.0])]
    loss, grads = l2_regularization(0.1, arrays)
    assert loss == pytest.approx(0.05 * 25.0)
    np.testing.assert_allclose(grads[0], 0.1 * arrays[0])
