"""Parameters: arithmetic, flattening, and the FedAvg combination rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.parameters import Parameters, weighted_mean


def make(w=1.0, b=2.0):
    return Parameters({"w": np.full((2, 3), w), "b": np.full(3, b)})


def test_mapping_protocol():
    p = make()
    assert set(p) == {"w", "b"}
    assert len(p) == 2
    assert p["w"].shape == (2, 3)
    assert p.num_parameters == 9
    assert p.nbytes == 72


def test_add_sub_scale_axpy():
    a, b = make(1, 1), make(2, 3)
    assert (a + b)["w"][0, 0] == 3
    assert (b - a)["b"][0] == 2
    assert a.scale(4.0)["w"][0, 0] == 4
    assert a.axpy(2.0, b)["b"][0] == 7


def test_structure_mismatch_raises():
    a = make()
    b = Parameters({"w": np.zeros((2, 3))})
    with pytest.raises(ValueError, match="structure mismatch"):
        _ = a + b


def test_zeros_like_and_copy_do_not_alias():
    a = make()
    z = a.zeros_like()
    assert z.l2_norm() == 0.0
    c = a.copy()
    c["w"][0, 0] = 99.0
    assert a["w"][0, 0] == 1.0


def test_l2_norm_and_clip():
    p = Parameters({"v": np.array([3.0, 4.0])})
    assert p.l2_norm() == pytest.approx(5.0)
    clipped = p.clip_by_norm(1.0)
    assert clipped.l2_norm() == pytest.approx(1.0)
    # Under the cap: returned unchanged.
    assert p.clip_by_norm(10.0) is p


@given(
    hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=30),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_vector_roundtrip(values):
    split = len(values) // 2
    p = Parameters({"a": values[:split], "b": values[split:]})
    recovered = p.from_vector(p.to_vector())
    assert recovered.allclose(p)


def test_from_vector_wrong_size():
    with pytest.raises(ValueError, match="entries"):
        make().from_vector(np.zeros(5))


def test_weighted_mean_matches_manual():
    a, b = make(1, 1), make(3, 3)
    mean = weighted_mean([(a, 1.0), (b, 3.0)])
    # (1*1 + 3*3) / 4 = 2.5
    assert mean["w"][0, 0] == pytest.approx(2.5)


def test_weighted_mean_rejects_empty_and_zero_weight():
    with pytest.raises(ValueError):
        weighted_mean([])
    with pytest.raises(ValueError):
        weighted_mean([(make(), 0.0)])


def test_map_applies_elementwise():
    doubled = make(2, 4).map(lambda x: x / 2)
    assert doubled["w"][0, 0] == 1.0
    assert doubled["b"][0] == 2.0
