"""Checkpoint serialization: exact roundtrip and size accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.parameters import Parameters
from repro.nn.serialization import (
    checkpoint_nbytes,
    params_from_bytes,
    params_to_bytes,
)


def test_roundtrip_basic(rng):
    p = Parameters(
        {"embed": rng.normal(size=(10, 4)), "b": rng.normal(size=3),
         "scalarish": np.array(2.5)}
    )
    blob = params_to_bytes(p)
    assert params_from_bytes(blob).allclose(p, atol=0)


@given(
    st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            st.integers(min_value=1, max_value=20),
        ),
        min_size=1,
        max_size=5,
        unique_by=lambda t: t[0],
    ),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(spec, seed):
    rng = np.random.default_rng(seed)
    p = Parameters({name: rng.normal(size=size) for name, size in spec})
    recovered = params_from_bytes(params_to_bytes(p))
    assert recovered.shapes() == p.shapes()
    assert recovered.allclose(p, atol=0)


def test_nbytes_matches_actual_serialized_size(rng):
    p = Parameters({"w": rng.normal(size=(17, 3)), "bias_vector": rng.normal(size=9)})
    assert checkpoint_nbytes(p) == len(params_to_bytes(p))


def test_bad_magic_rejected():
    with pytest.raises(ValueError, match="magic"):
        params_from_bytes(b"NOPE" + b"\x00" * 32)


def test_preserves_name_order(rng):
    p = Parameters({"z": np.zeros(1), "a": np.ones(1), "m": np.full(1, 2.0)})
    recovered = params_from_bytes(params_to_bytes(p))
    assert list(recovered) == ["z", "a", "m"]
