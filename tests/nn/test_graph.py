"""Graph representation and runtime compatibility."""

from repro.nn.graph import (
    GraphDef,
    OpSpec,
    build_eval_graph,
    build_server_aggregation_graph,
    build_training_graph,
)


def test_training_graph_requires_fused_runtime():
    graph = build_training_graph(epochs=2, batch_size=8, learning_rate=0.1)
    assert graph.min_runtime_version() == 9
    assert not graph.compatible_with(8)
    assert graph.compatible_with(9)


def test_training_graph_carries_hyperparameters():
    graph = build_training_graph(epochs=3, batch_size=32, learning_rate=0.05)
    batch_op = next(op for op in graph.ops if op.name == "batch_examples")
    assert batch_op.attrs["epochs"] == 3
    assert batch_op.attrs["batch_size"] == 32
    train_op = next(op for op in graph.ops if op.name == "fused_train_step")
    assert train_op.attrs["learning_rate"] == 0.05


def test_eval_graph_runs_everywhere():
    graph = build_eval_graph(batch_size=16)
    assert graph.min_runtime_version() == 1
    assert "forward" in graph.op_names()
    select = next(op for op in graph.ops if op.name == "select_examples")
    assert select.attrs["holdout"] is True


def test_labels_mark_load_and_save_nodes():
    graph = build_training_graph(1, 8, 0.1)
    assert graph.labels["load"] == "load_checkpoint"
    assert graph.labels["save"] == "save_update"


def test_server_graph_is_aggregation_only():
    graph = build_server_aggregation_graph()
    assert graph.op_names() == ["sum_updates", "apply_aggregate"]


def test_replace_ops_preserves_labels():
    graph = build_training_graph(1, 8, 0.1)
    replaced = graph.replace_ops(
        [OpSpec("noop", version=1, min_runtime_version=1)]
    )
    assert replaced.labels == graph.labels
    assert replaced.min_runtime_version() == 1


def test_with_attrs_merges():
    op = OpSpec("x", 1, 1, attrs={"a": 1})
    updated = op.with_attrs(b=2)
    assert updated.attrs == {"a": 1, "b": 2}
    assert op.attrs == {"a": 1}


def test_empty_graph_min_runtime_zero():
    assert GraphDef(ops=()).min_runtime_version() == 0
