"""Evaluation metric correctness."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, perplexity, top_k_recall


def test_accuracy_exact():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    labels = np.array([0, 1, 1])
    assert accuracy(logits, labels) == pytest.approx(2 / 3)


def test_top_k_recall_widens_with_k():
    logits = np.array(
        [[5.0, 4.0, 3.0, 2.0], [1.0, 2.0, 3.0, 4.0], [9.0, 1.0, 8.0, 0.0]]
    )
    labels = np.array([1, 3, 2])
    assert top_k_recall(logits, labels, k=1) == pytest.approx(1 / 3)
    assert top_k_recall(logits, labels, k=2) == pytest.approx(1.0)
    assert top_k_recall(logits, labels, k=4) == 1.0


def test_top_1_equals_accuracy(rng):
    logits = rng.normal(size=(50, 7))
    labels = rng.integers(0, 7, size=50)
    assert top_k_recall(logits, labels, k=1) == accuracy(logits, labels)


def test_top_k_rejects_bad_k():
    with pytest.raises(ValueError):
        top_k_recall(np.zeros((2, 3)), np.zeros(2, dtype=int), k=0)


def test_perplexity():
    assert perplexity(0.0) == 1.0
    assert perplexity(np.log(32.0)) == pytest.approx(32.0)
