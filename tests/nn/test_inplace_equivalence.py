"""Functional vs in-place model plane: byte-identical results.

Property-style sweeps over randomized structures and hyperparameter
branches (momentum / weight decay / clipping), asserting exact array
equality — the buffered hot path must be indistinguishable from the
functional API bit for bit.
"""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, SGDConfig
from repro.nn.parameters import (
    ParameterAccumulator,
    ParameterLayout,
    Parameters,
    buffered_math_enabled,
    functional_math,
    set_buffered_math,
    weighted_mean,
)


def random_params(rng, shapes=None):
    shapes = shapes or {
        "W0": (17, 5), "b0": (5,), "W1": (5, 3), "b1": (3,), "s": (),
    }
    return Parameters({k: rng.normal(size=s) for k, s in shapes.items()})


def assert_params_equal(a: Parameters, b: Parameters):
    assert list(a) == list(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k], err_msg=k)


# -- layout ------------------------------------------------------------------

def test_layout_roundtrip_and_caching():
    rng = np.random.default_rng(0)
    p = random_params(rng)
    layout = p.layout
    assert layout is p.layout  # cached
    assert layout.total_size == p.num_parameters
    vec = p.to_vector()
    back = layout.unflatten(vec)
    assert_params_equal(p, back)
    assert back.flat_base is vec  # views, not copies
    back["W0"][0, 0] = 123.0
    assert vec[0] == 123.0


def test_layout_equality_across_instances():
    rng = np.random.default_rng(1)
    a, b = random_params(rng), random_params(rng)
    assert a.layout == b.layout
    assert hash(a.layout) == hash(b.layout)
    assert a.layout != Parameters({"x": np.zeros(3)}).layout


def test_to_vector_out_buffer():
    rng = np.random.default_rng(2)
    p = random_params(rng)
    out = np.empty(p.num_parameters)
    result = p.to_vector(out=out)
    assert result is out
    np.testing.assert_array_equal(out, p.to_vector())
    with pytest.raises(ValueError):
        p.to_vector(out=np.empty(3))
    # flat-backed to_vector is still an independent copy
    flat = p.layout.unflatten(p.to_vector())
    vec = flat.to_vector()
    vec[0] = -1.0
    assert flat.flat_base[0] != -1.0


# -- in-place ops vs functional twins ---------------------------------------

@pytest.mark.parametrize("flat_backed", [False, True])
def test_inplace_ops_match_functional(flat_backed):
    rng = np.random.default_rng(3)
    for trial in range(10):
        a = random_params(rng)
        b = random_params(rng)
        if flat_backed:
            a = a.layout.unflatten(a.to_vector())
            b = b.layout.unflatten(b.to_vector())
        alpha = float(rng.normal())
        assert_params_equal(a + b, a.copy().add_(b))
        assert_params_equal(a - b, a.copy().sub_(b))
        assert_params_equal(a.scale(alpha), a.copy().scale_(alpha))
        assert_params_equal(a.axpy(alpha, b), a.copy().axpy_(alpha, b))
        scratch = np.empty(a.num_parameters)
        assert_params_equal(a.axpy(alpha, b), a.copy().axpy_(alpha, b, scratch))
        zeroed = a.copy().zero_()
        assert zeroed.l2_norm() == 0.0
        filled = a.copy().zero_().copy_from_(b)
        assert_params_equal(filled, b)


def test_inplace_mixed_backing():
    """Flat-backed against dict-backed operands and vice versa."""
    rng = np.random.default_rng(4)
    a, b = random_params(rng), random_params(rng)
    flat_a = a.layout.unflatten(a.to_vector())
    assert_params_equal(a + b, flat_a.copy().add_(b))
    assert_params_equal(a - b, a.copy().sub_(b.layout.unflatten(b.to_vector())))


@pytest.mark.parametrize("max_norm", [1e-6, 1.0, 1e9])
def test_clip_by_norm_inplace(max_norm):
    rng = np.random.default_rng(5)
    p = random_params(rng)
    assert_params_equal(p.clip_by_norm(max_norm), p.copy().clip_by_norm_(max_norm))


def test_structure_mismatch_raises():
    a = Parameters({"x": np.zeros(3)})
    b = Parameters({"x": np.zeros(4)})
    for op in (a.add_, a.sub_, a.copy_from_):
        with pytest.raises(ValueError):
            op(b)


def test_reordered_equal_structures_still_accepted():
    """The fast layout check falls back to the order-insensitive dict
    comparison, matching the functional API's tolerance."""
    a = Parameters({"x": np.ones(2), "y": np.full(3, 2.0)})
    b = Parameters({"y": np.full(3, 5.0), "x": np.full(2, 7.0)})
    assert_params_equal(a + b, a.copy().add_(b))


# -- accumulator -------------------------------------------------------------

def test_accumulator_matches_functional_chain():
    rng = np.random.default_rng(6)
    updates = [(random_params(rng), float(rng.integers(1, 50))) for _ in range(12)]
    acc = ParameterAccumulator.like(updates[0][0])
    functional = updates[0][0].scale(updates[0][1])
    for p, w in updates:
        acc.add(p, w)
    for p, w in updates[1:]:
        functional = functional.axpy(w, p)
    np.testing.assert_array_equal(acc.sum_vector, functional.to_vector())
    total = sum(w for _, w in updates)
    assert_params_equal(acc.mean(), functional.scale(1.0 / total))
    assert acc.count == len(updates)
    assert acc.weight_sum == total


def test_accumulator_vector_fold_matches_alloc_chain():
    rng = np.random.default_rng(7)
    vectors = [rng.normal(size=200) for _ in range(8)]
    delta_sum = vectors[0].copy()
    for v in vectors[1:]:
        delta_sum = delta_sum + v
    acc = ParameterAccumulator(dim=200)
    for v in vectors:
        acc.add_vector(v, 1.0)
    np.testing.assert_array_equal(acc.sum_vector, delta_sum)


def test_accumulator_flat_backed_updates_take_vector_path():
    rng = np.random.default_rng(8)
    p = random_params(rng)
    flat = p.layout.unflatten(p.to_vector())
    acc = ParameterAccumulator.like(p)
    acc.add(flat, 2.0)
    acc.add(p, 3.0)
    expected = p.scale(2.0).axpy(3.0, p)
    np.testing.assert_array_equal(acc.sum_vector, expected.to_vector())


def test_accumulator_reset_and_errors():
    acc = ParameterAccumulator(dim=4)
    with pytest.raises(ValueError):
        acc.mean_vector()
    acc.add_vector(np.ones(4), 1.0)
    acc.reset()
    assert acc.count == 0 and acc.weight_sum == 0.0
    with pytest.raises(ValueError):
        acc.add_vector(np.ones(3), 1.0)
    with pytest.raises(ValueError):
        ParameterAccumulator()
    with pytest.raises(ValueError):
        ParameterAccumulator(dim=4).add(random_params(np.random.default_rng(0)))


def test_weighted_mean_unchanged_semantics():
    rng = np.random.default_rng(9)
    a, b = random_params(rng), random_params(rng)
    mean = weighted_mean([(a, 1.0), (b, 3.0)])
    expected = a.scale(1.0).axpy(3.0, b).scale(1.0 / 4.0)
    assert_params_equal(mean, expected)
    with pytest.raises(ValueError):
        weighted_mean([])
    with pytest.raises(ValueError):
        weighted_mean([(a, 0.0)])


# -- SGD ---------------------------------------------------------------------

@pytest.mark.parametrize("momentum", [0.0, 0.9])
@pytest.mark.parametrize("weight_decay", [0.0, 1e-3])
@pytest.mark.parametrize("flat_backed", [False, True])
def test_sgd_step_inplace_equivalence(momentum, weight_decay, flat_backed):
    """Multi-step equivalence across every (momentum, weight-decay) branch,
    including the velocity state carried between steps."""
    rng = np.random.default_rng(10)
    cfg = SGDConfig(learning_rate=0.05, momentum=momentum, weight_decay=weight_decay)
    params = random_params(rng)
    grad_seq = [random_params(rng) for _ in range(5)]

    functional_opt = SGD(cfg)
    w_functional = params
    for g in grad_seq:
        w_functional = functional_opt.step(w_functional, g)

    inplace_opt = SGD(cfg)
    if flat_backed:
        w_inplace = params.layout.unflatten(params.to_vector())
        grads = [g.layout.unflatten(g.to_vector()) for g in grad_seq]
    else:
        w_inplace = params.copy()
        grads = grad_seq
    for g in grads:
        result = inplace_opt.step_(w_inplace, g)
        assert result is w_inplace
    np.testing.assert_array_equal(
        w_functional.to_vector(), w_inplace.to_vector()
    )


def test_sgd_step_does_not_mutate_inputs():
    rng = np.random.default_rng(11)
    params, grads = random_params(rng), random_params(rng)
    p0, g0 = params.to_vector(), grads.to_vector()
    SGD(SGDConfig()).step(params, grads)
    np.testing.assert_array_equal(params.to_vector(), p0)
    np.testing.assert_array_equal(grads.to_vector(), g0)
    SGD(SGDConfig()).step_(params.copy(), grads)
    np.testing.assert_array_equal(grads.to_vector(), g0)


def test_sgd_reset_clears_flat_velocity():
    rng = np.random.default_rng(12)
    cfg = SGDConfig(learning_rate=0.1, momentum=0.9)
    params = random_params(rng)
    layout = params.layout
    w = layout.unflatten(params.to_vector())
    g = layout.unflatten(random_params(rng).to_vector())
    opt = SGD(cfg)
    opt.step_(w, g)
    opt.reset()
    fresh = SGD(cfg)
    w2 = layout.unflatten(params.to_vector())
    opt.step_(w2, g)
    fresh.step_(w := layout.unflatten(params.to_vector()), g)
    np.testing.assert_array_equal(w2.to_vector(), w.to_vector())


# -- mode switch -------------------------------------------------------------

def test_buffered_math_switch_restores():
    assert buffered_math_enabled()
    with functional_math():
        assert not buffered_math_enabled()
        with functional_math():
            assert not buffered_math_enabled()
        assert not buffered_math_enabled()
    assert buffered_math_enabled()
    previous = set_buffered_math(False)
    assert previous is True
    assert set_buffered_math(True) is False


def test_sgd_refuses_mixed_momentum_conventions():
    """Flat-path momentum state must not be silently dropped by a switch
    to the per-array conventions."""
    rng = np.random.default_rng(13)
    cfg = SGDConfig(learning_rate=0.1, momentum=0.9)
    params = random_params(rng)
    layout = params.layout
    w = layout.unflatten(params.to_vector())
    g = layout.unflatten(random_params(rng).to_vector())
    opt = SGD(cfg)
    opt.step_(w, g)  # builds flat velocity
    with pytest.raises(RuntimeError):
        opt.step(params, random_params(rng))
    with pytest.raises(RuntimeError):
        opt.step_(params.copy(), random_params(rng))
    opt.reset()
    opt.step(params, random_params(rng))  # fine after reset
