"""All models' analytic gradients are verified against finite differences."""

import numpy as np
import pytest

from repro.nn.models import (
    BagOfWordsLanguageModel,
    LogisticRegression,
    MLPClassifier,
    RNNLanguageModel,
)
from repro.nn.parameters import Parameters


def finite_difference_check(model, params, x, y, eps=1e-6, tol=1e-4):
    """Compare every analytic gradient entry to a central difference."""
    _, grads = model.loss_and_grad(params, x, y)
    for name in params:
        arr = params[name]
        flat_grad = grads[name].ravel()
        flat = arr.ravel()
        # Probe a bounded number of coordinates to keep tests fast.
        probe = np.linspace(0, flat.size - 1, min(flat.size, 12)).astype(int)
        for idx in probe:
            original = flat[idx]
            bumped = {k: v.copy() for k, v in params.items()}
            bumped[name].ravel()[idx] = original + eps
            up = model.loss(Parameters(bumped), x, y)
            bumped[name].ravel()[idx] = original - eps
            down = model.loss(Parameters(bumped), x, y)
            fd = (up - down) / (2 * eps)
            assert flat_grad[idx] == pytest.approx(fd, abs=tol), (
                f"{name}[{idx}]"
            )


def test_logreg_gradients(rng):
    model = LogisticRegression(input_dim=6, n_classes=4)
    params = model.init(rng)
    x = rng.normal(size=(9, 6))
    y = rng.integers(0, 4, size=9)
    finite_difference_check(model, params, x, y)


def test_mlp_gradients(rng):
    model = MLPClassifier(input_dim=5, hidden_dims=(8, 6), n_classes=3)
    params = model.init(rng)
    x = rng.normal(size=(7, 5))
    y = rng.integers(0, 3, size=7)
    finite_difference_check(model, params, x, y)


def test_rnn_gradients(rng):
    model = RNNLanguageModel(vocab_size=12, embed_dim=5, hidden_dim=7)
    params = model.init(rng)
    x = rng.integers(0, 12, size=(6, 4))
    y = rng.integers(0, 12, size=6)
    finite_difference_check(model, params, x, y, tol=2e-4)


def test_bow_gradients(rng):
    model = BagOfWordsLanguageModel(vocab_size=10, embed_dim=4)
    params = model.init(rng)
    x = rng.integers(0, 10, size=(8, 5))
    y = rng.integers(0, 10, size=8)
    finite_difference_check(model, params, x, y)


def test_logreg_learns_separable_data(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    params = model.init(rng)
    w_true = rng.normal(size=(4, 3))
    x = rng.normal(size=(400, 4))
    y = (x @ w_true).argmax(axis=1)
    for _ in range(200):
        _, grads = model.loss_and_grad(params, x, y)
        params = params.axpy(-0.5, grads)
    acc = (model.logits(params, x).argmax(axis=1) == y).mean()
    assert acc > 0.9


def test_rnn_param_count_configurable(rng):
    model = RNNLanguageModel(vocab_size=100, embed_dim=16, hidden_dim=32)
    params = model.init(rng)
    expected = 100 * 16 + 16 * 32 + 32 * 32 + 32 + 32 * 100 + 100
    assert params.num_parameters == expected


def test_rnn_rejects_non_sequence_input(rng):
    model = RNNLanguageModel(vocab_size=5)
    params = model.init(rng)
    with pytest.raises(ValueError, match="token ids"):
        model.logits(params, np.zeros(3, dtype=int))


def test_models_are_deterministic_given_params(rng):
    model = MLPClassifier(input_dim=3, hidden_dims=(4,), n_classes=2)
    params = model.init(rng)
    x = rng.normal(size=(5, 3))
    np.testing.assert_array_equal(model.logits(params, x), model.logits(params, x))
