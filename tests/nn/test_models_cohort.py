"""Cohort-batched model kernels vs K independent per-client calls.

``loss_and_grad_cohort`` must be bitwise row-exact when every row's
minibatch is full (the per-row GEMM shapes then match the per-client
call), equal up to float summation order for ragged rows, and produce a
zero gradient row plus zero loss for inactive clients (count 0).
"""

import numpy as np
import pytest

from repro.nn.losses import softmax_cross_entropy, softmax_cross_entropy_cohort
from repro.nn.models import (
    BagOfWordsLanguageModel,
    LogisticRegression,
    MLPClassifier,
    Model,
    RNNLanguageModel,
)
from repro.nn.optimizers import SGD, SGDConfig
from repro.nn.parameters import Parameters, StackedParameters

K, B = 5, 6

MODELS = {
    "logreg": LogisticRegression(input_dim=11, n_classes=4),
    "mlp": MLPClassifier(input_dim=11, hidden_dims=(9, 7), n_classes=4),
    "rnn": RNNLanguageModel(vocab_size=17, embed_dim=5, hidden_dim=8),
    "bow": BagOfWordsLanguageModel(vocab_size=17, embed_dim=5),
}


def make_batch(name, rng, k=K, b=B):
    """Cohort inputs shaped for the named model."""
    if name in ("rnn", "bow"):
        x = rng.integers(0, 17, size=(k, b, 4))
        y = rng.integers(0, 17, size=(k, b))
    else:
        x = rng.normal(size=(k, b, 11))
        y = rng.integers(0, 4, size=(k, b))
    return x, y


def make_stack(model, k=K, seed=0):
    """K distinct parameter rows for one model."""
    template = model.init(np.random.default_rng(seed))
    stack = template.layout.stacked(k)
    for i in range(k):
        row = model.init(np.random.default_rng(seed + 1 + i))
        for name in row:
            stack[name][i] = row[name]
    return template.layout, stack


@pytest.mark.parametrize("name", sorted(MODELS))
def test_full_batches_bitwise_exact(name, rng):
    model = MODELS[name]
    layout, stack = make_stack(model)
    grads = layout.stacked(K)
    x, y = make_batch(name, rng)
    counts = np.full(K, B)
    losses = model.loss_and_grad_cohort(stack, x.copy(), y, counts, out=grads)
    for i in range(K):
        loss, g = model.loss_and_grad(stack.row(i), x[i], y[i])
        assert losses[i] == loss
        for arr in g:
            assert np.array_equal(grads[arr][i], g[arr]), (name, i, arr)


@pytest.mark.parametrize("name", sorted(MODELS))
def test_ragged_counts_close(name, rng):
    """K=..1 rows, a single-example device, and an inactive device."""
    model = MODELS[name]
    layout, stack = make_stack(model)
    grads = layout.stacked(K)
    x, y = make_batch(name, rng)
    counts = np.array([B, 4, 2, 1, 0])
    losses = model.loss_and_grad_cohort(stack, x.copy(), y, counts, out=grads)
    for i in range(K):
        c = counts[i]
        if c == 0:
            assert losses[i] == 0.0
            for arr in grads:
                assert not grads[arr][i].any()
            continue
        loss, g = model.loss_and_grad(stack.row(i), x[i][:c], y[i][:c])
        assert losses[i] == pytest.approx(loss, rel=1e-12, abs=1e-15)
        for arr in g:
            np.testing.assert_allclose(
                grads[arr][i], g[arr], rtol=1e-9, atol=1e-12
            )


def test_cohort_of_one(rng):
    model = MODELS["mlp"]
    layout, stack = make_stack(model, k=1)
    grads = layout.stacked(1)
    x, y = make_batch("mlp", rng, k=1)
    losses = model.loss_and_grad_cohort(
        stack, x.copy(), y, np.array([B]), out=grads
    )
    loss, g = model.loss_and_grad(stack.row(0), x[0], y[0])
    assert losses[0] == loss
    for arr in g:
        assert np.array_equal(grads[arr][0], g[arr])


def test_padding_values_are_masked_out(rng):
    """Garbage (finite) padding beyond counts must not leak into grads."""
    model = MODELS["logreg"]
    layout, stack = make_stack(model)
    x, y = make_batch("logreg", rng)
    counts = np.array([3, 3, 3, 3, 3])
    grads_a = layout.stacked(K)
    model.loss_and_grad_cohort(stack, x.copy(), y, counts, out=grads_a)
    x2 = x.copy()
    x2[:, 3:] = 1e6  # extreme but finite padding
    grads_b = layout.stacked(K)
    losses_b = model.loss_and_grad_cohort(stack, x2, y, counts, out=grads_b)
    assert np.all(np.isfinite(losses_b))
    for arr in grads_a:
        assert np.array_equal(grads_a[arr], grads_b[arr])


def test_base_fallback_matches_kernels(rng):
    """Any Model works through the default per-row fallback."""
    model = MODELS["logreg"]
    layout, stack = make_stack(model)
    x, y = make_batch("logreg", rng)
    counts = np.array([B, 4, 2, 1, 0])
    g_kernel = layout.stacked(K)
    l_kernel = model.loss_and_grad_cohort(stack, x.copy(), y, counts, out=g_kernel)
    g_fallback = layout.stacked(K)
    l_fallback = Model.loss_and_grad_cohort(
        model, stack, x, y, counts, g_fallback
    )
    np.testing.assert_allclose(l_kernel, l_fallback, rtol=1e-12)
    for arr in g_kernel:
        np.testing.assert_allclose(
            g_kernel[arr], g_fallback[arr], rtol=1e-9, atol=1e-12
        )


def test_cohort_xent_matches_per_client(rng):
    logits = rng.normal(size=(K, B, 7))
    labels = rng.integers(0, 7, size=(K, B))
    counts = np.array([B, B, 3, 1, 0])
    losses, dl = softmax_cross_entropy_cohort(logits.copy(), labels, counts)
    for i in range(K):
        c = counts[i]
        if c == 0:
            assert losses[i] == 0.0 and not dl[i].any()
            continue
        loss, d = softmax_cross_entropy(logits[i][:c], labels[i][:c])
        if c == B:
            assert losses[i] == loss
            assert np.array_equal(dl[i], d)
        else:
            assert losses[i] == pytest.approx(loss, rel=1e-12)
            np.testing.assert_allclose(dl[i][:c], d, rtol=1e-12)
            assert not dl[i][c:].any()


# -- StackedParameters --------------------------------------------------------


def test_stacked_parameters_ops(rng):
    model = MODELS["mlp"]
    params = model.init(np.random.default_rng(3))
    layout = params.layout
    stack = layout.stacked(4)
    stack.broadcast_(params)
    for i in range(4):
        assert stack.row(i).allclose(params, atol=0)
    other = model.init(np.random.default_rng(4))
    stack.sub_broadcast_(other)
    expected = params - other
    assert stack.row(2).allclose(expected, atol=0)
    factors = np.array([1.0, 2.0, 0.5, 3.0])
    stack.scale_rows_(factors)
    assert stack.row(3).allclose(expected.scale(3.0), atol=1e-15)
    # row_norms is bitwise row-wise l2_norm
    norms = stack.row_norms()
    for i in range(4):
        assert norms[i] == stack.row(i).l2_norm()
    out = np.empty((4, layout.total_size))
    stack.write_rows(out)
    assert np.array_equal(out[1], stack.row(1).to_vector())


def test_stacked_head_is_a_view():
    model = MODELS["logreg"]
    layout = model.init(np.random.default_rng(0)).layout
    stack = layout.stacked(8)
    head = stack.head(3)
    assert head.rows == 3
    head["W"][0, 0, 0] = 42.0
    assert stack["W"][0, 0, 0] == 42.0
    assert stack.head(8) is stack
    with pytest.raises(ValueError):
        stack.head(9)


def test_stacked_rejects_bad_write_shape():
    model = MODELS["logreg"]
    layout = model.init(np.random.default_rng(0)).layout
    stack = layout.stacked(2)
    with pytest.raises(ValueError):
        stack.write_rows(np.empty((3, layout.total_size)))


# -- vectorized SGD -----------------------------------------------------------


def test_step_stack_matches_per_row_step():
    model = MODELS["mlp"]
    layout, stack = make_stack(model, k=3)
    grads = layout.stacked(3)
    g_rows = []
    for i in range(3):
        g = model.init(np.random.default_rng(50 + i))
        g_rows.append(g)
        for name in g:
            grads[name][i] = g[name]
    before = [stack.row(i).copy() for i in range(3)]
    SGD(SGDConfig(learning_rate=0.3)).step_stack_(stack, grads)
    for i in range(3):
        expected = SGD(SGDConfig(learning_rate=0.3)).step_(
            before[i], g_rows[i].copy()
        )
        for name in expected:
            assert np.array_equal(stack[name][i], expected[name])


def test_step_stack_momentum_and_decay():
    model = MODELS["logreg"]
    layout, stack = make_stack(model, k=2)
    cfg = SGDConfig(learning_rate=0.1, momentum=0.9, weight_decay=1e-3)
    opt = SGD(cfg)
    per_row = [SGD(cfg) for _ in range(2)]
    rows = [stack.row(i).copy() for i in range(2)]
    for step in range(3):
        grads = layout.stacked(2)
        g_rows = []
        for i in range(2):
            g = model.init(np.random.default_rng(10 * step + i))
            g_rows.append(g)
            for name in g:
                grads[name][i] = g[name]
        opt.step_stack_(stack, grads)
        for i in range(2):
            rows[i] = per_row[i].step(rows[i], g_rows[i])
    for i in range(2):
        for name in rows[i]:
            np.testing.assert_allclose(
                stack[name][i], rows[i][name], rtol=1e-12, atol=1e-15
            )


def test_step_stack_refuses_mixed_momentum_state():
    model = MODELS["logreg"]
    params = model.init(np.random.default_rng(0))
    grads = model.init(np.random.default_rng(1))
    layout, stack = make_stack(model, k=2)
    gstack = layout.stacked(2)
    opt = SGD(SGDConfig(learning_rate=0.1, momentum=0.9))
    opt.step(params, grads)
    with pytest.raises(RuntimeError):
        opt.step_stack_(stack, gstack)
    opt2 = SGD(SGDConfig(learning_rate=0.1, momentum=0.9))
    opt2.step_stack_(stack, gstack)
    with pytest.raises(RuntimeError):
        opt2.step(params, grads)
