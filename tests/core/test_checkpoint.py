"""Checkpoint store: the 'commit only after full aggregation' contract."""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointStore, FLCheckpoint
from repro.nn.parameters import Parameters


def params(val=1.0):
    return Parameters({"w": np.full(4, val)})


def test_checkpoint_roundtrip():
    ckpt = FLCheckpoint.from_params(params(3.0), "pop", "task", 5, note="x")
    recovered = ckpt.to_params()
    assert recovered.allclose(params(3.0))
    assert ckpt.round_number == 5
    assert ckpt.metadata["note"] == "x"
    assert ckpt.nbytes == len(ckpt.payload)


def test_initialize_then_commit():
    store = CheckpointStore()
    store.initialize(params(0.0), "pop", "task")
    assert store.latest("pop").round_number == 0
    store.commit(FLCheckpoint.from_params(params(1.0), "pop", "task", 1))
    assert store.latest("pop").round_number == 1
    assert store.write_count == 2
    assert len(store.history("pop")) == 2


def test_commit_must_be_monotonic():
    store = CheckpointStore()
    store.initialize(params(), "pop", "task")
    store.commit(FLCheckpoint.from_params(params(), "pop", "task", 3))
    with pytest.raises(ValueError, match="non-monotonic"):
        store.commit(FLCheckpoint.from_params(params(), "pop", "task", 3))
    with pytest.raises(ValueError, match="non-monotonic"):
        store.commit(FLCheckpoint.from_params(params(), "pop", "task", 2))


def test_gaps_in_round_numbers_allowed():
    store = CheckpointStore()
    store.initialize(params(), "pop", "task")
    store.commit(FLCheckpoint.from_params(params(), "pop", "task", 7))
    assert store.latest("pop").round_number == 7


def test_unknown_population():
    store = CheckpointStore()
    assert not store.has_checkpoint("nope")
    with pytest.raises(KeyError):
        store.latest("nope")


def test_populations_are_isolated():
    store = CheckpointStore()
    store.initialize(params(1.0), "a", "t")
    store.initialize(params(2.0), "b", "t")
    assert store.latest("a").to_params()["w"][0] == 1.0
    assert store.latest("b").to_params()["w"][0] == 2.0
