"""Plan generation: device/server split, sizing, compatibility."""

import pytest

from repro.core.config import ClientTrainingConfig, SecAggConfig, TaskKind
from repro.core.plan import ExampleSelectionCriteria, generate_plan


def test_training_plan_structure():
    plan = generate_plan(
        task_id="t",
        kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(epochs=2, batch_size=8),
        secagg=SecAggConfig(),
        model_nbytes=1000,
    )
    assert plan.device.kind is TaskKind.TRAINING
    assert "fused_train_step" in plan.device.graph.op_names()
    assert plan.server.graph.op_names() == ["sum_updates", "apply_aggregate"]
    assert not plan.device.selection_criteria.holdout


def test_eval_plan_uses_holdout():
    plan = generate_plan(
        task_id="t",
        kind=TaskKind.EVALUATION,
        client_config=ClientTrainingConfig(),
        secagg=SecAggConfig(),
        model_nbytes=1000,
    )
    assert plan.device.selection_criteria.holdout
    assert "forward" in plan.device.graph.op_names()
    assert "fused_train_step" not in plan.device.graph.op_names()


def test_plan_size_comparable_with_model():
    """Appendix A: 'plan size is comparable with the global model'."""
    model_nbytes = 50_000
    plan = generate_plan(
        task_id="t",
        kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(),
        secagg=SecAggConfig(),
        model_nbytes=model_nbytes,
    )
    assert 0.9 * model_nbytes < plan.device.nbytes < 1.2 * model_nbytes


def test_compatibility_check():
    plan = generate_plan(
        task_id="t",
        kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(),
        secagg=SecAggConfig(),
        model_nbytes=100,
    )
    assert plan.compatible_with_runtime(10)
    assert not plan.compatible_with_runtime(8)  # fused op needs 9


def test_selection_criteria_validation():
    with pytest.raises(ValueError):
        ExampleSelectionCriteria(max_examples=0)
    with pytest.raises(ValueError):
        ExampleSelectionCriteria(max_age_s=-1.0)


def test_criteria_carries_client_cap():
    plan = generate_plan(
        task_id="t",
        kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(max_examples=123),
        secagg=SecAggConfig(),
        model_nbytes=10,
    )
    assert plan.device.selection_criteria.max_examples == 123
