"""Adaptive window tuning (the Sec. 11 future-work controller)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveWindowConfig, AdaptiveWindowTuner
from repro.core.config import RoundConfig
from repro.core.rounds import RoundStateMachine


def run_round_with_times(report_times, target=10, factor=1.3):
    sm = RoundStateMachine(
        1,
        "t",
        RoundConfig(
            target_participants=target,
            overselection_factor=factor,
            selection_timeout_s=60,
            reporting_timeout_s=600,
        ),
        0.0,
    )
    for d in range(sm.config.selection_goal):
        sm.on_checkin(d, 0.0)
    for d, t in enumerate(report_times):
        if sm.is_terminal:
            break
        sm.on_report(d, t)
    if not sm.is_terminal:
        sm.on_reporting_timeout(600.0)
    return sm.result()


def test_tuner_shrinks_oversized_window(rng):
    """Devices report within ~60s but the static window is 600s: the
    controller should pull the window down toward the p95 + headroom."""
    base = RoundConfig(target_participants=10, reporting_timeout_s=600.0)
    tuner = AdaptiveWindowTuner(base)
    for _ in range(20):
        times = np.sort(rng.uniform(20.0, 60.0, size=13))
        tuner.observe(run_round_with_times(times))
    tuned = tuner.tuned_config()
    assert tuned.reporting_timeout_s < 150.0
    assert tuned.reporting_timeout_s >= 60.0  # floor respected
    assert tuner.adjustments > 0


def test_tuner_grows_window_for_slow_fleets(rng):
    base = RoundConfig(target_participants=10, reporting_timeout_s=100.0)
    config = AdaptiveWindowConfig(max_reporting_s=2000.0)
    tuner = AdaptiveWindowTuner(base, config)
    for _ in range(20):
        times = np.sort(rng.uniform(200.0, 500.0, size=13))
        tuner.observe(run_round_with_times(times))
    assert tuner.tuned_config().reporting_timeout_s > 300.0


def test_tuner_waits_for_warmup(rng):
    base = RoundConfig(target_participants=10, reporting_timeout_s=600.0)
    tuner = AdaptiveWindowTuner(base, AdaptiveWindowConfig(warmup_rounds=10))
    for _ in range(3):
        tuner.observe(run_round_with_times(np.full(13, 30.0)))
    assert tuner.tuned_config().reporting_timeout_s == 600.0


def test_tuner_respects_bounds(rng):
    base = RoundConfig(target_participants=10, reporting_timeout_s=600.0)
    config = AdaptiveWindowConfig(min_reporting_s=90.0, max_reporting_s=120.0)
    tuner = AdaptiveWindowTuner(base, config)
    for _ in range(30):
        tuner.observe(run_round_with_times(np.full(13, 1.0)))
    assert tuner.tuned_config().reporting_timeout_s >= 90.0
    for _ in range(30):
        tuner.observe(run_round_with_times(np.full(13, 599.0)))
    assert tuner.tuned_config().reporting_timeout_s <= 120.0


def test_only_completers_count(rng):
    """Aborted/dropped devices must not poison the timing estimate."""
    base = RoundConfig(target_participants=5, reporting_timeout_s=600.0)
    tuner = AdaptiveWindowTuner(base)
    for _ in range(10):
        # 5 fast completers; the remaining selected devices never report
        # (their synthetic times are past the target count).
        times = [10.0, 11.0, 12.0, 13.0, 14.0]
        tuner.observe(run_round_with_times(times, target=5, factor=1.6))
    assert tuner.tuned_config().reporting_timeout_s < 100.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"target_quantile": 0.4},
        {"headroom": 0.9},
        {"min_reporting_s": 0.0},
        {"min_reporting_s": 100.0, "max_reporting_s": 50.0},
        {"smoothing": 0.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        AdaptiveWindowConfig(**kwargs)
