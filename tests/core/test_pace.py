"""Pace steering: sync windows, spread windows, diurnal damping."""

import numpy as np
import pytest

from repro.core.pace import PaceConfig, PaceSteering, ReconnectWindow, checkin_dispersion
from repro.sim.diurnal import DiurnalModel


def steering(**kwargs):
    return PaceSteering(PaceConfig(**kwargs), DiurnalModel())


def test_small_population_windows_align_to_round_boundary():
    """Rejected devices of a small population should return together."""
    pace = steering(round_period_s=300.0, sync_window_width_s=30.0)
    w1 = pace.suggest_reconnect(now_s=100.0, population_size=50, needed_per_round=20)
    w2 = pace.suggest_reconnect(now_s=240.0, population_size=50, needed_per_round=20)
    assert w1.earliest_s % 300.0 == 0.0
    assert w2.earliest_s % 300.0 == 0.0
    assert w1.width_s == 30.0


def test_sync_window_respects_min_delay():
    pace = steering(round_period_s=300.0, min_reconnect_delay_s=60.0)
    window = pace.suggest_reconnect(now_s=290.0, population_size=10, needed_per_round=5)
    assert window.earliest_s >= 290.0 + 60.0


def test_large_population_window_scales_with_population():
    pace = steering(small_population_threshold=1000)
    small_horizon = pace.suggest_reconnect(2_000.0, 10_000, 100).width_s
    big_horizon = pace.suggest_reconnect(2_000.0, 1_000_000, 100).width_s
    assert big_horizon > small_horizon


def test_large_population_window_capped():
    pace = steering(max_reconnect_delay_s=7200.0, small_population_threshold=100)
    window = pace.suggest_reconnect(0.0, 10_000_000, 10)
    assert window.width_s <= 7200.0


def test_diurnal_damping_stretches_peak_windows():
    model = DiurnalModel(peak_hour=2.0)
    pace = PaceSteering(
        PaceConfig(small_population_threshold=100, diurnal_damping=True), model
    )
    # Population small enough that the horizon stays under the cap, so the
    # damping factor is visible.
    peak = pace.suggest_reconnect(2 * 3600.0, 10_000, 100).width_s
    trough = pace.suggest_reconnect(14 * 3600.0, 10_000, 100).width_s
    assert peak > trough


def test_damping_disabled_gives_equal_windows():
    pace = PaceSteering(
        PaceConfig(small_population_threshold=100, diurnal_damping=False),
        DiurnalModel(),
    )
    peak = pace.suggest_reconnect(2 * 3600.0, 10_000, 100).width_s
    trough = pace.suggest_reconnect(14 * 3600.0, 10_000, 100).width_s
    assert peak == trough


def test_window_sampling_within_bounds(rng):
    window = ReconnectWindow(100.0, 200.0)
    samples = [window.sample(rng) for _ in range(100)]
    assert all(100.0 <= s <= 200.0 for s in samples)


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        ReconnectWindow(10.0, 5.0)


def test_dispersion_sync_vs_spread(rng):
    """Synchronized check-ins have low dispersion; uniform ones high."""
    period = 300.0
    synced = 300.0 * np.arange(100) + rng.uniform(0, 15, size=100)
    spread = rng.uniform(0, 30_000, size=100)
    assert checkin_dispersion(synced, period) < 0.2
    assert checkin_dispersion(spread, period) > 0.7


def test_dispersion_empty():
    assert checkin_dispersion(np.array([]), 300.0) == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"round_period_s": 0},
        {"min_reconnect_delay_s": 0},
        {"max_reconnect_delay_s": 30.0, "min_reconnect_delay_s": 60.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        PaceConfig(**kwargs)
