"""FedSGD: one synchronous gradient step, example-weighted."""

import numpy as np
import pytest

from repro.core.datasets import ClientDataset, pool_datasets
from repro.core.fedsgd import FedSGD, FedSGDConfig
from repro.nn.models import LogisticRegression


def make_clients(rng, sizes=(10, 30)):
    w_true = rng.normal(size=(3, 2))
    clients = []
    for i, n in enumerate(sizes):
        x = rng.normal(size=(n, 3))
        y = (x @ w_true).argmax(axis=1)
        clients.append(ClientDataset(f"c{i}", x, y))
    return clients


def test_round_equals_pooled_gradient_step(rng):
    """With all clients selected, FedSGD == one SGD step on pooled data."""
    model = LogisticRegression(input_dim=3, n_classes=2)
    clients = make_clients(rng)
    params = model.init(rng)
    algo = FedSGD(model, FedSGDConfig(clients_per_round=2, learning_rate=0.7))
    new_params, _ = algo.run_round(1, params, clients, np.random.default_rng(0))

    pooled = pool_datasets(clients)
    _, grads = model.loss_and_grad(params, pooled.x, pooled.y)
    expected = params.axpy(-0.7, grads)
    assert new_params.allclose(expected, atol=1e-10)


def test_fit_reduces_loss(rng):
    model = LogisticRegression(input_dim=3, n_classes=2)
    clients = make_clients(rng, sizes=(50, 50, 50))
    algo = FedSGD(model, FedSGDConfig(clients_per_round=3, learning_rate=0.5))
    _, history = algo.fit(clients, 30, rng)
    assert history[-1].mean_client_loss < history[0].mean_client_loss


def test_max_examples_cap(rng):
    model = LogisticRegression(input_dim=3, n_classes=2)
    clients = make_clients(rng, sizes=(100,))
    algo = FedSGD(
        model, FedSGDConfig(clients_per_round=1, max_examples_per_client=25)
    )
    update = algo.client_gradient(model.init(rng), clients[0], rng)
    assert update.num_examples == 25


@pytest.mark.parametrize(
    "kwargs", [{"clients_per_round": 0}, {"learning_rate": 0.0}]
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        FedSGDConfig(**kwargs)


def test_no_clients_raises(rng):
    algo = FedSGD(LogisticRegression(2, 2))
    with pytest.raises(ValueError):
        algo.run_round(1, algo.initialize(rng), [], rng)
