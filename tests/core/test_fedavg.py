"""Federated Averaging: Algorithm 1 semantics, exactly."""

import numpy as np
import pytest

from repro.core.datasets import ClientDataset
from repro.core.fedavg import (
    ClientUpdateResult,
    FedAvgConfig,
    FederatedAveraging,
    client_update,
)
from repro.nn.models import LogisticRegression
from repro.nn.parameters import Parameters


def make_clients(rng, n_clients=8, n=40, d=4, c=3):
    w_true = rng.normal(size=(d, c))
    clients = []
    for i in range(n_clients):
        x = rng.normal(size=(n, d))
        y = (x @ w_true + 0.1 * rng.normal(size=(n, c))).argmax(axis=1)
        clients.append(ClientDataset(f"c{i}", x, y))
    return clients


def test_client_update_delta_is_weighted(rng):
    """ClientUpdate returns Δ = n * (w_local - w_init)."""
    model = LogisticRegression(input_dim=4, n_classes=3)
    params = model.init(rng)
    ds = make_clients(rng, n_clients=1, n=20)[0]
    update = client_update(
        model, params, ds, epochs=1, batch_size=20, learning_rate=0.5,
        rng=np.random.default_rng(0),
    )
    # One full-batch step: w_local = w - 0.5 * grad, so delta = -n*0.5*grad.
    _, grads = model.loss_and_grad(params, ds.x, ds.y)
    expected = grads.scale(-0.5 * 20)
    assert update.delta.allclose(expected, atol=1e-10)
    assert update.weight == 20
    assert update.steps == 1


def test_aggregate_matches_algorithm_one(rng):
    """w_{t+1} = w_t + (Σ Δ_k) / (Σ n_k)."""
    model = LogisticRegression(input_dim=2, n_classes=2)
    algo = FederatedAveraging(model)
    w = Parameters({"W": np.zeros((2, 2)), "b": np.zeros(2)})
    u1 = ClientUpdateResult(
        "a", Parameters({"W": np.full((2, 2), 2.0), "b": np.full(2, 2.0)}),
        weight=2.0, num_examples=2, mean_loss=0.0, steps=1,
    )
    u2 = ClientUpdateResult(
        "b", Parameters({"W": np.full((2, 2), 6.0), "b": np.full(2, 6.0)}),
        weight=2.0, num_examples=2, mean_loss=0.0, steps=1,
    )
    out = algo.aggregate(w, [u1, u2])
    # (2 + 6) / 4 = 2.0 everywhere
    assert out["W"][0, 0] == pytest.approx(2.0)
    assert out["b"][1] == pytest.approx(2.0)


def test_aggregate_weighting_prefers_larger_clients():
    model = LogisticRegression(input_dim=1, n_classes=2)
    algo = FederatedAveraging(model)
    w = Parameters({"v": np.zeros(1)})
    small = ClientUpdateResult(
        "s", Parameters({"v": np.array([1.0 * 1])}), 1.0, 1, 0.0, 1
    )
    big = ClientUpdateResult(
        "b", Parameters({"v": np.array([-1.0 * 9])}), 9.0, 9, 0.0, 1
    )
    out = algo.aggregate(w, [small, big])
    assert out["v"][0] == pytest.approx((1.0 - 9.0) / 10.0)


def test_aggregate_rejects_empty(rng):
    algo = FederatedAveraging(LogisticRegression(1, 2))
    with pytest.raises(ValueError):
        algo.aggregate(Parameters({"v": np.zeros(1)}), [])


def test_update_weight_must_be_positive():
    with pytest.raises(ValueError):
        ClientUpdateResult("x", Parameters({"v": np.zeros(1)}), 0.0, 0, 0.0, 0)


def test_fit_converges_on_shared_task(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    clients = make_clients(rng)
    algo = FederatedAveraging(
        model, FedAvgConfig(clients_per_round=4, learning_rate=0.5, epochs=2)
    )
    params, history = algo.fit(clients, num_rounds=40, rng=rng)
    assert history[-1].mean_client_loss < 0.5 * history[0].mean_client_loss


def test_max_examples_caps_client_contribution(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    params = model.init(rng)
    ds = make_clients(rng, n_clients=1, n=100)[0]
    update = client_update(
        model, params, ds, epochs=1, batch_size=10, learning_rate=0.1,
        rng=rng, max_examples=30,
    )
    assert update.num_examples == 30
    assert update.weight == 30


def test_clip_update_norm_bounds_delta(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    params = model.init(rng)
    ds = make_clients(rng, n_clients=1)[0]
    update = client_update(
        model, params, ds, epochs=5, batch_size=8, learning_rate=2.0,
        rng=rng, clip_update_norm=0.01,
    )
    # Clip bound is per-example: ||delta|| <= clip * n.
    assert update.delta.l2_norm() <= 0.01 * update.weight + 1e-9


def test_eval_fn_called_on_schedule(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    clients = make_clients(rng, n_clients=4)
    calls = []

    def eval_fn(params, round_number):
        calls.append(round_number)
        return {"acc": 1.0}

    algo = FederatedAveraging(model, FedAvgConfig(clients_per_round=2))
    _, history = algo.fit(clients, 7, rng, eval_fn=eval_fn, eval_every=3)
    assert calls == [3, 6, 7]
    assert history[2].eval_metrics == {"acc": 1.0}


def test_server_learning_rate_scales_delta(rng):
    model = LogisticRegression(input_dim=1, n_classes=2)
    w = Parameters({"v": np.zeros(1)})
    update = ClientUpdateResult(
        "a", Parameters({"v": np.array([4.0])}), 2.0, 2, 0.0, 1
    )
    half = FederatedAveraging(model, FedAvgConfig(server_learning_rate=0.5))
    assert half.aggregate(w, [update])["v"][0] == pytest.approx(1.0)
