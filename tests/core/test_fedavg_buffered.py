"""Buffered client_update / aggregation: byte-identical to functional."""

import numpy as np
import pytest

from repro.core.datasets import ClientDataset
from repro.core.fedavg import (
    ClientUpdateBuffers,
    FedAvgConfig,
    FederatedAveraging,
    client_update,
)
from repro.nn.models import LogisticRegression, MLPClassifier, RNNLanguageModel


def make_dataset(rng, n=60, dim=6, classes=4, client_id="c0"):
    x = rng.normal(size=(n, dim))
    y = rng.integers(0, classes, size=n)
    return ClientDataset(client_id, x, y)


@pytest.mark.parametrize("clip", [None, 0.05])
@pytest.mark.parametrize("max_examples", [None, 40])
def test_client_update_buffered_byte_identical(clip, max_examples):
    model = LogisticRegression(input_dim=6, n_classes=4)
    rng = np.random.default_rng(0)
    params = model.init(rng)
    dataset = make_dataset(rng)
    kwargs = dict(
        epochs=2, batch_size=16, learning_rate=0.2,
        max_examples=max_examples, clip_update_norm=clip,
    )
    functional = client_update(
        model, params, dataset, rng=np.random.default_rng(7), **kwargs
    )
    buffers = ClientUpdateBuffers.for_structure(params)
    buffered = client_update(
        model, params, dataset, rng=np.random.default_rng(7),
        buffers=buffers, **kwargs,
    )
    np.testing.assert_array_equal(
        functional.delta.to_vector(), buffered.delta.to_vector()
    )
    assert functional.mean_loss == buffered.mean_loss
    assert functional.steps == buffered.steps
    assert functional.weight == buffered.weight
    assert functional.num_examples == buffered.num_examples


def test_client_update_buffered_mlp_and_fallback_models():
    """MLP uses the in-place gradient override; the RNN goes through the
    copy fallback — both must match the functional path exactly."""
    rng = np.random.default_rng(1)
    mlp = MLPClassifier(input_dim=6, hidden_dims=(8, 5), n_classes=3)
    ds = make_dataset(rng, classes=3)
    p = mlp.init(rng)
    a = client_update(mlp, p, ds, 1, 8, 0.1, np.random.default_rng(3))
    b = client_update(
        mlp, p, ds, 1, 8, 0.1, np.random.default_rng(3),
        buffers=ClientUpdateBuffers.for_structure(p),
    )
    np.testing.assert_array_equal(a.delta.to_vector(), b.delta.to_vector())

    rnn = RNNLanguageModel(vocab_size=12, embed_dim=4, hidden_dim=5)
    tokens = rng.integers(0, 12, size=(30, 3))
    labels = rng.integers(0, 12, size=30)
    ds_rnn = ClientDataset("r", tokens, labels)
    p_rnn = rnn.init(rng)
    a = client_update(rnn, p_rnn, ds_rnn, 1, 8, 0.1, np.random.default_rng(5))
    b = client_update(
        rnn, p_rnn, ds_rnn, 1, 8, 0.1, np.random.default_rng(5),
        buffers=ClientUpdateBuffers.for_structure(p_rnn),
    )
    np.testing.assert_array_equal(a.delta.to_vector(), b.delta.to_vector())


def test_client_update_buffers_reused_across_sessions():
    model = LogisticRegression(input_dim=6, n_classes=4)
    rng = np.random.default_rng(2)
    params = model.init(rng)
    buffers = ClientUpdateBuffers.for_structure(params)
    first = client_update(
        model, params, make_dataset(rng), 1, 16, 0.1,
        np.random.default_rng(1), buffers=buffers,
    )
    first_snapshot = first.delta.to_vector()
    second = client_update(
        model, params, make_dataset(rng, client_id="c1"), 1, 16, 0.1,
        np.random.default_rng(2), buffers=buffers,
    )
    # The result aliases the shared buffers: the second session overwrote
    # the first result's storage, which is exactly the documented contract.
    assert first.delta.flat_base is second.delta.flat_base
    np.testing.assert_array_equal(
        first.delta.to_vector(), second.delta.to_vector()
    )
    assert not np.array_equal(first_snapshot, second.delta.to_vector())


def test_client_update_buffers_structure_mismatch():
    model = LogisticRegression(input_dim=6, n_classes=4)
    rng = np.random.default_rng(3)
    params = model.init(rng)
    other = LogisticRegression(input_dim=5, n_classes=4).init(rng)
    with pytest.raises(ValueError):
        client_update(
            model, params, make_dataset(rng), 1, 16, 0.1,
            np.random.default_rng(1),
            buffers=ClientUpdateBuffers.for_structure(other),
        )


def test_batches_into_matches_batches():
    rng = np.random.default_rng(4)
    ds = make_dataset(rng, n=37)
    xb_buf = np.empty((8, ds.x.shape[1]), dtype=ds.x.dtype)
    yb_buf = np.empty((8,), dtype=ds.y.dtype)
    functional = list(ds.batches(8, 2, np.random.default_rng(9)))
    buffered = [
        (xb.copy(), yb.copy())
        for xb, yb in ds.batches_into(8, 2, np.random.default_rng(9), xb_buf, yb_buf)
    ]
    assert len(functional) == len(buffered)
    for (xa, ya), (xb, yb) in zip(functional, buffered):
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)


def test_federated_averaging_round_matches_manual_aggregate():
    """run_round's streaming accumulator equals the functional rule."""
    model = LogisticRegression(input_dim=6, n_classes=4)
    rng = np.random.default_rng(5)
    clients = [make_dataset(rng, client_id=f"c{i}") for i in range(6)]
    fedavg = FederatedAveraging(model, FedAvgConfig(clients_per_round=4, epochs=1))
    params = fedavg.initialize(np.random.default_rng(0))

    select_rng = np.random.default_rng(11)
    new_params, stats = fedavg.run_round(1, params, clients, select_rng)

    # Replay with the functional path and the original combination rule.
    replay_rng = np.random.default_rng(11)
    cfg = fedavg.config
    k = min(cfg.clients_per_round, len(clients))
    chosen = replay_rng.choice(len(clients), size=k, replace=False)
    updates = [
        client_update(
            model, params, clients[i], epochs=cfg.epochs,
            batch_size=cfg.batch_size, learning_rate=cfg.learning_rate,
            rng=replay_rng,
        )
        for i in chosen
    ]
    delta_sum = updates[0].delta.copy()
    weight_sum = updates[0].weight
    for u in updates[1:]:
        delta_sum = delta_sum + u.delta
        weight_sum += u.weight
    expected = params.axpy(
        cfg.server_learning_rate, delta_sum.scale(1.0 / weight_sum)
    )
    np.testing.assert_array_equal(new_params.to_vector(), expected.to_vector())
    assert stats.num_clients == k


def test_aggregate_streaming_matches_functional_chain():
    model = LogisticRegression(input_dim=6, n_classes=4)
    rng = np.random.default_rng(6)
    clients = [make_dataset(rng, client_id=f"c{i}") for i in range(3)]
    fedavg = FederatedAveraging(model)
    params = fedavg.initialize(np.random.default_rng(0))
    updates = [
        client_update(model, params, c, 1, 16, 0.1, np.random.default_rng(i))
        for i, c in enumerate(clients)
    ]
    result = fedavg.aggregate(params, updates)
    delta_sum = updates[0].delta.copy()
    weight_sum = updates[0].weight
    for u in updates[1:]:
        delta_sum = delta_sum + u.delta
        weight_sum += u.weight
    expected = params.axpy(1.0, delta_sum.scale(1.0 / weight_sum))
    np.testing.assert_array_equal(result.to_vector(), expected.to_vector())
    with pytest.raises(ValueError):
        fedavg.aggregate(params, [])
