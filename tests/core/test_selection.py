"""Selection strategies: reservoir sampling and resource-aware selection."""

import numpy as np
import pytest

from repro.core.selection import (
    DeviceEstimate,
    ReservoirSampler,
    resource_aware_select,
    uniform_select,
)


def test_reservoir_keeps_first_k():
    sampler = ReservoirSampler(3, np.random.default_rng(0))
    for i in range(3):
        sampler.offer(i)
    assert sorted(sampler.sample()) == [0, 1, 2]


def test_reservoir_size_bounded(rng):
    sampler = ReservoirSampler(5, rng)
    for i in range(1000):
        sampler.offer(i)
    assert len(sampler.sample()) == 5
    assert sampler.seen == 1000


def test_reservoir_is_approximately_uniform():
    """Each stream item should survive with probability k/n."""
    counts = np.zeros(20)
    for seed in range(2000):
        sampler = ReservoirSampler(5, np.random.default_rng(seed))
        for i in range(20):
            sampler.offer(i)
        for kept in sampler.sample():
            counts[kept] += 1
    expected = 2000 * 5 / 20
    # Each count is Binomial(2000, 0.25): sd ~ 19.4, allow 5 sigma.
    assert np.all(np.abs(counts - expected) < 5 * 19.4)


def test_reservoir_rejects_bad_k(rng):
    with pytest.raises(ValueError):
        ReservoirSampler(0, rng)


def test_resource_aware_prefers_fast_devices():
    candidates = [
        DeviceEstimate(0, 5.0, 50.0, 5.0),   # 60s
        DeviceEstimate(1, 1.0, 10.0, 1.0),   # 12s
        DeviceEstimate(2, 2.0, 20.0, 2.0),   # 24s
        DeviceEstimate(3, 10.0, 100.0, 10.0),  # 120s
    ]
    selected = resource_aware_select(candidates, deadline_s=70.0, max_devices=10)
    assert selected == [1, 2, 0]  # fastest-first, device 3 misses the deadline


def test_resource_aware_respects_max_devices():
    candidates = [DeviceEstimate(i, 1, 1, 1) for i in range(10)]
    assert len(resource_aware_select(candidates, 100.0, 4)) == 4


def test_resource_aware_bad_deadline():
    with pytest.raises(ValueError):
        resource_aware_select([], 0.0, 5)


def test_uniform_select(rng):
    ids = list(range(100))
    chosen = uniform_select(ids, 10, rng)
    assert len(chosen) == 10
    assert len(set(chosen)) == 10
    assert uniform_select(ids, 200, rng) != []  # clamps to n
    assert uniform_select([], 5, rng) == []
