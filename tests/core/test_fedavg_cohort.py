"""client_update_cohort vs K independent client_update calls.

The cohort path must consume identical RNG draws (subset, then one
shuffle per epoch), produce bitwise-identical deltas for models whose
kernels are row-exact, and handle ragged cohorts (different per-client
example counts, hence different local step counts) by masking.
"""

import numpy as np
import pytest

from repro.core.datasets import ClientDataset
from repro.core.fedavg import (
    ClientUpdateBuffers,
    CohortUpdateBuffers,
    LocalStepSchedule,
    client_update,
    client_update_cohort,
)
from repro.nn.models import (
    BagOfWordsLanguageModel,
    LogisticRegression,
    MLPClassifier,
    RNNLanguageModel,
)

EXACT_MODELS = {
    "logreg": LogisticRegression(input_dim=10, n_classes=4),
    "mlp": MLPClassifier(input_dim=10, hidden_dims=(8,), n_classes=4),
}
TOKEN_MODELS = {
    "rnn": RNNLanguageModel(vocab_size=13, embed_dim=4, hidden_dim=6),
    "bow": BagOfWordsLanguageModel(vocab_size=13, embed_dim=4),
}


def make_datasets(name, sizes, seed=5):
    rng = np.random.default_rng(seed)
    out = []
    for i, n in enumerate(sizes):
        if name in TOKEN_MODELS:
            x = rng.integers(0, 13, size=(n, 3))
            y = rng.integers(0, 13, size=n)
        else:
            x = rng.normal(size=(n, 10))
            y = rng.integers(0, 4, size=n)
        out.append(ClientDataset(f"c{i}", x, y))
    return out


def run_both(model, datasets, exact, **kwargs):
    """Per-device results (copied out per session) and the cohort result."""
    params = model.init(np.random.default_rng(1))
    buffers = ClientUpdateBuffers.for_structure(params)
    singles = []
    for i, d in enumerate(datasets):
        u = client_update(
            model, params, d, rng=np.random.default_rng(400 + i),
            buffers=buffers, **kwargs,
        )
        singles.append((u.delta.to_vector(), u.mean_loss, u.steps, u.weight))
    stacked = client_update_cohort(
        model, params,
        datasets=datasets,
        rngs=[np.random.default_rng(400 + i) for i in range(len(datasets))],
        **kwargs,
    )
    for i, (vector, mean_loss, steps, weight) in enumerate(singles):
        assert stacked.client_ids[i] == datasets[i].client_id
        assert float(stacked.weights[i]) == weight
        assert int(stacked.steps[i]) == steps
        if exact:
            assert np.array_equal(stacked.delta_row(i), vector), i
            assert float(stacked.mean_losses[i]) == mean_loss
        else:
            np.testing.assert_allclose(
                stacked.delta_row(i), vector, rtol=1e-8, atol=1e-11
            )
            assert float(stacked.mean_losses[i]) == pytest.approx(
                mean_loss, rel=1e-10
            )
    return stacked


@pytest.mark.parametrize("name", sorted(EXACT_MODELS))
def test_uniform_cohort_bitwise_exact(name):
    """Equal-sized clients with batch-divisible data: every minibatch is
    full, so the cohort path is bitwise-identical per client."""
    model = EXACT_MODELS[name]
    datasets = make_datasets(name, [32] * 6)
    run_both(model, datasets, exact=True,
             epochs=2, batch_size=8, learning_rate=0.2)


@pytest.mark.parametrize("name", sorted(TOKEN_MODELS))
def test_token_models_close(name):
    model = TOKEN_MODELS[name]
    datasets = make_datasets(name, [24] * 4)
    run_both(model, datasets, exact=False,
             epochs=1, batch_size=8, learning_rate=0.1)


def test_ragged_cohort_close():
    """Different example counts => different step counts; stragglers of
    the *numeric* schedule fall inactive instead of perturbing others."""
    model = EXACT_MODELS["mlp"]
    datasets = make_datasets("mlp", [40, 17, 8, 3, 1])
    stacked = run_both(model, datasets, exact=False,
                       epochs=2, batch_size=8, learning_rate=0.1)
    assert list(stacked.steps) == [10, 6, 2, 2, 2]


def test_clipping_matches_per_client():
    model = EXACT_MODELS["logreg"]
    datasets = make_datasets("logreg", [16] * 4)
    # A clip bound tight enough that rows actually clip.
    run_both(model, datasets, exact=True,
             epochs=1, batch_size=8, learning_rate=2.0,
             clip_update_norm=1e-3)


def test_max_examples_subset_matches():
    model = EXACT_MODELS["logreg"]
    datasets = make_datasets("logreg", [64] * 3)
    run_both(model, datasets, exact=True,
             epochs=1, batch_size=8, learning_rate=0.1, max_examples=24)


def test_schedule_draw_consumes_stream_like_client_update():
    """After drawing a schedule, the RNG sits exactly where client_update
    would have left it."""
    d = make_datasets("logreg", [40])[0]
    model = EXACT_MODELS["logreg"]
    params = model.init(np.random.default_rng(1))
    rng_a = np.random.default_rng(9)
    client_update(model, params, d, epochs=2, batch_size=8,
                  learning_rate=0.1, rng=rng_a, max_examples=24)
    rng_b = np.random.default_rng(9)
    LocalStepSchedule.draw(d, epochs=2, batch_size=8, rng=rng_b,
                           max_examples=24)
    assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)


def test_prebuilt_schedules_equal_datasets_path():
    model = EXACT_MODELS["mlp"]
    datasets = make_datasets("mlp", [24, 24])
    params = model.init(np.random.default_rng(1))
    schedules = [
        LocalStepSchedule.draw(d, epochs=1, batch_size=8,
                               rng=np.random.default_rng(400 + i))
        for i, d in enumerate(datasets)
    ]
    a = client_update_cohort(model, params, schedules, learning_rate=0.1)
    b = client_update_cohort(
        model, params, datasets=datasets,
        rngs=[np.random.default_rng(400 + i) for i in range(2)],
        epochs=1, batch_size=8, learning_rate=0.1,
    )
    assert np.array_equal(a.delta_matrix, b.delta_matrix)
    assert np.array_equal(a.mean_losses, b.mean_losses)


def test_buffers_reused_across_cohort_sizes():
    model = EXACT_MODELS["logreg"]
    params = model.init(np.random.default_rng(1))
    buffers = CohortUpdateBuffers(params.layout)
    for sizes in ([16] * 3, [16] * 7, [16] * 2):
        datasets = make_datasets("logreg", sizes)
        stacked = client_update_cohort(
            model, params, datasets=datasets,
            rngs=[np.random.default_rng(i) for i in range(len(sizes))],
            epochs=1, batch_size=8, learning_rate=0.1, buffers=buffers,
        )
        assert stacked.cohort_size == len(sizes)
        single = client_update(
            model, params, datasets[0], epochs=1, batch_size=8,
            learning_rate=0.1, rng=np.random.default_rng(0),
        )
        assert np.array_equal(stacked.delta_row(0), single.delta.to_vector())
    assert buffers.capacity == 7


def test_delta_matrix_is_freshly_owned():
    model = EXACT_MODELS["logreg"]
    params = model.init(np.random.default_rng(1))
    buffers = CohortUpdateBuffers(params.layout)
    datasets = make_datasets("logreg", [16, 16])
    a = client_update_cohort(
        model, params, datasets=datasets,
        rngs=[np.random.default_rng(i) for i in range(2)],
        epochs=1, batch_size=8, learning_rate=0.1, buffers=buffers,
    )
    kept = a.delta_matrix.copy()
    # A second execution with the same buffers must not touch the first
    # execution's delta matrix (its rows are live report vectors).
    client_update_cohort(
        model, params, datasets=make_datasets("logreg", [16, 16], seed=77),
        rngs=[np.random.default_rng(50 + i) for i in range(2)],
        epochs=1, batch_size=8, learning_rate=0.1, buffers=buffers,
    )
    assert np.array_equal(a.delta_matrix, kept)


def test_result_accessor_round_trips():
    model = EXACT_MODELS["logreg"]
    params = model.init(np.random.default_rng(1))
    datasets = make_datasets("logreg", [16, 16])
    stacked = client_update_cohort(
        model, params, datasets=datasets,
        rngs=[np.random.default_rng(i) for i in range(2)],
        epochs=1, batch_size=8, learning_rate=0.1,
    )
    single = stacked.result(1)
    assert single.client_id == "c1"
    assert single.weight == 16.0
    assert np.array_equal(single.delta.to_vector(), stacked.delta_row(1))


def test_empty_cohort_rejected():
    model = EXACT_MODELS["logreg"]
    params = model.init(np.random.default_rng(1))
    with pytest.raises(ValueError, match="empty cohort"):
        client_update_cohort(model, params, datasets=[], rngs=[])
    with pytest.raises(ValueError, match="schedules"):
        client_update_cohort(model, params)
