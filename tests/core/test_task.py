"""Task scheduling strategies (Sec. 7.1)."""

import numpy as np
import pytest

from repro.core.config import RoundConfig, TaskConfig, TaskKind
from repro.core.task import (
    FLPopulation,
    FLTask,
    SchedulingStrategy,
    TaskScheduler,
)


def task(task_id, kind=TaskKind.TRAINING, priority=1.0):
    return FLTask(
        config=TaskConfig(
            task_id=task_id,
            population_name="pop",
            kind=kind,
            priority=priority,
            round_config=RoundConfig(target_participants=5),
        )
    )


def population(*tasks):
    pop = FLPopulation(name="pop")
    for t in tasks:
        pop.add_task(t)
    return pop


def test_population_rejects_wrong_population_and_duplicates():
    pop = FLPopulation(name="pop")
    wrong = FLTask(config=TaskConfig(task_id="x", population_name="other"))
    with pytest.raises(ValueError, match="targets population"):
        pop.add_task(wrong)
    pop.add_task(task("a"))
    with pytest.raises(ValueError, match="duplicate"):
        pop.add_task(task("a"))


def test_task_lookup():
    pop = population(task("a"), task("b"))
    assert pop.task("b").task_id == "b"
    with pytest.raises(KeyError):
        pop.task("zzz")


def test_round_robin_cycles():
    scheduler = TaskScheduler(
        population(task("a"), task("b"), task("c")),
        SchedulingStrategy.ROUND_ROBIN,
    )
    picks = [scheduler.next_task().task_id for _ in range(6)]
    assert picks == ["a", "b", "c", "a", "b", "c"]


def test_single_task_always_chosen():
    scheduler = TaskScheduler(population(task("only")), SchedulingStrategy.AB_WEIGHTED)
    assert {scheduler.next_task().task_id for _ in range(5)} == {"only"}


def test_alternate_train_eval_interleaves():
    scheduler = TaskScheduler(
        population(task("train", TaskKind.TRAINING), task("eval", TaskKind.EVALUATION)),
        SchedulingStrategy.ALTERNATE_TRAIN_EVAL,
    )
    picks = [scheduler.next_task().task_id for _ in range(6)]
    assert picks == ["train", "eval", "train", "eval", "train", "eval"]


def test_alternate_without_eval_tasks():
    scheduler = TaskScheduler(
        population(task("t1"), task("t2")),
        SchedulingStrategy.ALTERNATE_TRAIN_EVAL,
    )
    picks = [scheduler.next_task().task_id for _ in range(4)]
    assert picks == ["t1", "t2", "t1", "t2"]


def test_ab_weighted_respects_priority():
    """A/B comparison: high-priority arm runs ~3x more rounds."""
    scheduler = TaskScheduler(
        population(task("a", priority=3.0), task("b", priority=1.0)),
        SchedulingStrategy.AB_WEIGHTED,
        rng=np.random.default_rng(0),
    )
    picks = [scheduler.next_task().task_id for _ in range(2000)]
    ratio = picks.count("a") / picks.count("b")
    assert 2.4 < ratio < 3.7


def test_empty_population_raises():
    scheduler = TaskScheduler(FLPopulation(name="pop"))
    with pytest.raises(RuntimeError, match="no deployed tasks"):
        scheduler.next_task()
