"""ClientDataset batching and splitting."""

import numpy as np
import pytest

from repro.core.datasets import ClientDataset, pool_datasets, train_holdout_split


def make_dataset(n=10, d=3, seed=0):
    rng = np.random.default_rng(seed)
    return ClientDataset("c", rng.normal(size=(n, d)), rng.integers(0, 2, size=n))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="examples"):
        ClientDataset("c", np.zeros((3, 2)), np.zeros(4))


def test_batches_cover_every_example_each_epoch(rng):
    ds = make_dataset(n=10)
    seen = []
    for xb, yb in ds.batches(batch_size=3, epochs=2, rng=rng):
        assert xb.shape[0] == yb.shape[0]
        seen.append(xb.shape[0])
    assert sum(seen) == 20  # 2 epochs x 10 examples
    # 10/3 -> batches of 3,3,3,1 per epoch
    assert seen == [3, 3, 3, 1, 3, 3, 3, 1]


def test_batches_shuffle_differs_across_epochs(rng):
    ds = ClientDataset("c", np.arange(8)[:, None], np.arange(8))
    epochs = list(ds.batches(batch_size=8, epochs=2, rng=rng))
    assert not np.array_equal(epochs[0][1], epochs[1][1])
    assert sorted(epochs[0][1]) == sorted(epochs[1][1]) == list(range(8))


def test_batches_without_rng_preserve_order():
    ds = ClientDataset("c", np.arange(5)[:, None], np.arange(5))
    (xb, yb), = list(ds.batches(batch_size=5, epochs=1))
    np.testing.assert_array_equal(yb, np.arange(5))


@pytest.mark.parametrize("batch_size,epochs", [(0, 1), (2, 0), (-1, 1)])
def test_invalid_batching(batch_size, epochs):
    with pytest.raises(ValueError):
        list(make_dataset().batches(batch_size, epochs))


def test_holdout_split_partitions(rng):
    ds = make_dataset(n=20)
    train, holdout = train_holdout_split(ds, 0.25, rng)
    assert train.num_examples == 15
    assert holdout.num_examples == 5


def test_holdout_fraction_bounds(rng):
    with pytest.raises(ValueError):
        train_holdout_split(make_dataset(), 0.0, rng)
    with pytest.raises(ValueError):
        train_holdout_split(make_dataset(), 1.0, rng)


def test_pool_concatenates():
    a = make_dataset(n=4, seed=1)
    b = make_dataset(n=6, seed=2)
    pooled = pool_datasets([a, b])
    assert pooled.num_examples == 10
    with pytest.raises(ValueError):
        pool_datasets([])
