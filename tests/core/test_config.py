"""Configuration invariants and the paper's operating-point defaults."""

import pytest

from repro.core.config import (
    ClientTrainingConfig,
    RoundConfig,
    SecAggConfig,
    TaskConfig,
)


def test_selection_goal_is_130_percent():
    """Sec. 9: 'the server typically selects 130% of the target number'."""
    config = RoundConfig(target_participants=100, overselection_factor=1.3)
    assert config.selection_goal == 130


def test_selection_goal_rounds_up():
    assert RoundConfig(target_participants=3, overselection_factor=1.3).selection_goal == 4


def test_min_participants_from_fraction():
    config = RoundConfig(target_participants=100, min_participant_fraction=0.8)
    assert config.min_participants == 80
    tiny = RoundConfig(target_participants=1, min_participant_fraction=0.1)
    assert tiny.min_participants == 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"target_participants": 0},
        {"overselection_factor": 0.9},
        {"min_participant_fraction": 0.0},
        {"min_participant_fraction": 1.5},
        {"selection_timeout_s": 0},
        {"reporting_timeout_s": -5},
    ],
)
def test_round_config_validation(kwargs):
    with pytest.raises(ValueError):
        RoundConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [{"epochs": 0}, {"batch_size": 0}, {"learning_rate": 0}, {"max_examples": 0}],
)
def test_client_config_validation(kwargs):
    with pytest.raises(ValueError):
        ClientTrainingConfig(**kwargs)


def test_secagg_threshold():
    config = SecAggConfig(group_size=100, threshold_fraction=0.66)
    assert config.threshold() == 66
    assert config.threshold(10) == 7
    assert config.threshold(2) == 2


@pytest.mark.parametrize(
    "kwargs",
    [
        {"group_size": 1},
        {"threshold_fraction": 0.5},
        {"threshold_fraction": 1.1},
        {"modulus_bits": 4},
        {"modulus_bits": 64},
        {"plane": "turbo"},
    ],
)
def test_secagg_validation(kwargs):
    with pytest.raises(ValueError):
        SecAggConfig(**kwargs)


def test_secagg_accepts_every_plane():
    for plane in (None, "scalar", "vectorized", "vectorized_pergroup"):
        assert SecAggConfig(plane=plane).plane == plane


def test_task_config_requires_names():
    with pytest.raises(ValueError):
        TaskConfig(task_id="", population_name="p")
    with pytest.raises(ValueError):
        TaskConfig(task_id="t", population_name="")
    with pytest.raises(ValueError):
        TaskConfig(task_id="t", population_name="p", priority=0)
