"""Property-based tests: the round state machine under arbitrary event
sequences never violates its accounting invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import RoundConfig
from repro.core.rounds import (
    DeviceOutcome,
    RoundPhase,
    RoundStateMachine,
)

# An event is (kind, device_id) applied at increasing times.
EVENT = st.tuples(
    st.sampled_from(
        ["checkin", "report", "drop", "selection_timeout", "reporting_timeout"]
    ),
    st.integers(min_value=0, max_value=30),
)


@given(
    events=st.lists(EVENT, min_size=1, max_size=80),
    target=st.integers(min_value=1, max_value=10),
    factor=st.floats(min_value=1.0, max_value=2.0),
    min_frac=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_invariants_under_arbitrary_event_sequences(
    events, target, factor, min_frac
):
    sm = RoundStateMachine(
        round_id=1,
        task_id="prop",
        config=RoundConfig(
            target_participants=target,
            overselection_factor=factor,
            min_participant_fraction=min_frac,
            selection_timeout_s=100.0,
            reporting_timeout_s=200.0,
        ),
        started_at_s=0.0,
    )
    t = 0.0
    for kind, device in events:
        t += 1.0
        was_terminal = sm.is_terminal
        if kind == "checkin":
            sm.on_checkin(device, t)
        elif kind == "report":
            if device in sm.participants:
                sm.on_report(device, t)
        elif kind == "drop":
            sm.on_device_dropped(device, t)
        elif kind == "selection_timeout":
            sm.on_selection_timeout(t)
        elif kind == "reporting_timeout":
            sm.on_reporting_timeout(t)

        # -- invariants, checked after every event --------------------------
        # Selection never exceeds the goal.
        assert sm.selected_count <= sm.config.selection_goal
        # Completions never exceed the target.
        assert sm.completed_count <= sm.config.target_participants
        # Terminal states are absorbing.
        if was_terminal:
            assert sm.is_terminal
        # Outcome counts partition the selected set.
        outcome_total = sum(
            1
            for p in sm.participants.values()
            if p.outcome is not DeviceOutcome.IN_FLIGHT
        )
        assert outcome_total + sm.in_flight_count == sm.selected_count
        # No in-flight devices may remain after the round ends.
        if sm.is_terminal:
            assert sm.in_flight_count == 0

    if sm.is_terminal:
        result = sm.result()
        parts = (
            result.completed_count
            + result.rejected_report_count
            + result.dropped_count
            + result.aborted_count
        )
        assert parts == result.selected_count
        assert result.ended_at_s >= result.started_at_s
        if result.committed:
            assert result.completed_count >= sm.config.min_participants


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_committed_rounds_always_reached_min_participants(data):
    """Fuzz the happy path: whatever mix of reports/drops arrives, a
    committed round carries at least min_participants updates."""
    target = data.draw(st.integers(min_value=2, max_value=8))
    sm = RoundStateMachine(
        1,
        "t",
        RoundConfig(
            target_participants=target,
            overselection_factor=1.5,
            min_participant_fraction=0.6,
            selection_timeout_s=10.0,
            reporting_timeout_s=50.0,
        ),
        0.0,
    )
    n = sm.config.selection_goal
    for d in range(n):
        sm.on_checkin(d, 1.0)
    drops = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    for d in range(n):
        if sm.is_terminal:
            break
        if d in drops:
            sm.on_device_dropped(d, 5.0)
        else:
            sm.on_report(d, 5.0)
    if not sm.is_terminal:
        sm.on_reporting_timeout(50.0)
    result = sm.result()
    if result.committed:
        assert result.completed_count >= sm.config.min_participants
    else:
        assert result.completed_count < sm.config.min_participants
