"""Round state machine: every transition of Sec. 2.2."""

import pytest

from repro.core.config import RoundConfig
from repro.core.rounds import (
    CheckinDecision,
    DeviceOutcome,
    RoundPhase,
    RoundStateMachine,
)


def machine(target=4, factor=1.5, min_frac=0.5):
    return RoundStateMachine(
        round_id=1,
        task_id="t",
        config=RoundConfig(
            target_participants=target,
            overselection_factor=factor,
            min_participant_fraction=min_frac,
            selection_timeout_s=60,
            reporting_timeout_s=120,
        ),
        started_at_s=0.0,
    )


def test_selection_accepts_until_goal_then_rejects():
    sm = machine(target=4, factor=1.5)  # goal = 6
    decisions = [sm.on_checkin(d, 1.0) for d in range(10)]
    assert decisions[:6] == [CheckinDecision.ACCEPT] * 6
    assert decisions[6:] == [CheckinDecision.REJECT] * 4
    assert sm.phase is RoundPhase.REPORTING
    assert sm.rejected_checkin_count == 4


def test_duplicate_checkin_is_idempotent():
    sm = machine()
    assert sm.on_checkin(7, 1.0) is CheckinDecision.ACCEPT
    assert sm.on_checkin(7, 2.0) is CheckinDecision.ACCEPT
    assert sm.selected_count == 1


def test_selection_timeout_with_enough_starts_round():
    sm = machine(target=4, factor=1.5, min_frac=0.5)  # goal 6, min-to-start 3
    for d in range(3):
        sm.on_checkin(d, 1.0)
    assert sm.on_selection_timeout(60.0) is RoundPhase.REPORTING
    assert sm.selection_ended_at_s == 60.0


def test_selection_timeout_below_minimum_abandons():
    sm = machine(target=4, factor=1.5, min_frac=0.5)
    sm.on_checkin(0, 1.0)
    sm.on_checkin(1, 1.0)
    assert sm.on_selection_timeout(60.0) is RoundPhase.ABANDONED
    result = sm.result()
    assert not result.committed
    assert result.aborted_count == 2  # in-flight devices terminated


def test_round_completes_at_target_and_aborts_stragglers():
    sm = machine(target=4, factor=1.5)
    for d in range(6):
        sm.on_checkin(d, 1.0)
    for d in range(4):
        assert sm.on_report(d, 10.0 + d) is DeviceOutcome.COMPLETED
    assert sm.phase is RoundPhase.COMPLETED
    result = sm.result()
    assert result.committed
    assert result.completed_count == 4
    assert result.aborted_count == 2
    assert result.ended_at_s == 13.0


def test_report_after_completion_returns_aborted():
    """The Table 1 '#' path: the device was aborted when the round hit its
    target; its late report is answered with the terminal (non-completed)
    outcome, which the server NACKs."""
    sm = machine(target=2, factor=2.0)
    for d in range(4):
        sm.on_checkin(d, 1.0)
    sm.on_report(0, 5.0)
    sm.on_report(1, 6.0)
    assert sm.phase is RoundPhase.COMPLETED
    outcome = sm.on_report(2, 7.0)
    assert outcome is DeviceOutcome.ABORTED_BY_SERVER
    assert outcome is not DeviceOutcome.COMPLETED  # -> NACK -> '#'
    assert sm.completed_count == 2  # late report did not sneak in


def test_dropped_devices_counted():
    sm = machine(target=4, factor=1.5)
    for d in range(6):
        sm.on_checkin(d, 1.0)
    sm.on_device_dropped(0, 5.0, reason="eligibility_change")
    sm.on_device_dropped(1, 6.0, reason="network")
    for d in range(2, 6):
        sm.on_report(d, 10.0)
    result = sm.result()
    assert result.dropped_count == 2
    assert result.completed_count == 4
    assert result.committed
    records = {r.device_id: r for r in result.participant_records}
    assert records[0].drop_reason == "eligibility_change"


def test_drop_after_report_is_ignored():
    sm = machine(target=2, factor=1.0)
    sm.on_checkin(0, 1.0)
    sm.on_checkin(1, 1.0)
    sm.on_report(0, 5.0)
    sm.on_device_dropped(0, 6.0)
    assert sm.completed_count == 1


def test_reporting_timeout_commits_with_min():
    sm = machine(target=4, factor=1.5, min_frac=0.5)  # min_participants = 2
    for d in range(6):
        sm.on_checkin(d, 1.0)
    sm.on_report(0, 10.0)
    sm.on_report(1, 11.0)
    assert sm.on_reporting_timeout(120.0) is RoundPhase.COMPLETED
    result = sm.result()
    assert result.committed
    assert result.completed_count == 2
    assert result.aborted_count == 4


def test_reporting_timeout_below_min_abandons():
    sm = machine(target=4, factor=1.5, min_frac=0.9)  # min_participants = 4
    for d in range(6):
        sm.on_checkin(d, 1.0)
    sm.on_report(0, 10.0)
    assert sm.on_reporting_timeout(120.0) is RoundPhase.ABANDONED
    assert not sm.result().committed


def test_report_from_unselected_device_raises():
    sm = machine()
    with pytest.raises(KeyError):
        sm.on_report(42, 1.0)


def test_result_before_terminal_raises():
    sm = machine()
    sm.on_checkin(0, 1.0)
    with pytest.raises(RuntimeError, match="still running"):
        sm.result()


def test_checkin_after_selection_closed_rejected():
    sm = machine(target=2, factor=1.0)
    sm.on_checkin(0, 1.0)
    sm.on_checkin(1, 1.0)
    assert sm.phase is RoundPhase.REPORTING
    assert sm.on_checkin(2, 2.0) is CheckinDecision.REJECT


def test_external_abandon():
    sm = machine()
    sm.on_checkin(0, 1.0)
    sm.abandon(5.0, reason="master_crash")
    assert sm.phase is RoundPhase.ABANDONED
    assert sm.result().aborted_count == 1


def test_participation_time_recorded():
    sm = machine(target=1, factor=1.0)
    sm.on_checkin(0, 2.0)
    sm.on_report(0, 9.0)
    record = sm.result().participant_records[0]
    assert record.participation_time_s == pytest.approx(7.0)


def test_round_run_time_measured_from_selection_end():
    sm = machine(target=2, factor=1.0)
    sm.on_checkin(0, 1.0)
    sm.on_checkin(1, 3.0)  # goal reached -> reporting begins at t=3
    sm.on_report(0, 10.0)
    sm.on_report(1, 13.0)
    assert sm.result().round_run_time_s == pytest.approx(10.0)
