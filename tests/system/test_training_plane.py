"""Fleet-level A/B of the training planes.

``training_plane="cohort"`` (the default) must be deterministic and —
for models whose cohort kernels are row-exact — byte-identical to the
``"per_device"`` baseline: same RunReport, same committed global model,
same health telemetry.
"""

import numpy as np
import pytest

from repro import FLFleet
from repro.core.config import ClientTrainingConfig, RoundConfig, TaskConfig
from repro.device.example_store import ExampleStore
from repro.device.runtime import RealTrainer
from repro.device.scheduler import JobSchedule
from repro.nn.models import MLPClassifier
from repro.sim.diurnal import DiurnalModel
from repro.sim.population import PopulationConfig
from repro.system.builder import FleetValidationError

MODEL = MLPClassifier(input_dim=16, hidden_dims=(12,), n_classes=4)
INIT = MODEL.init(np.random.default_rng(0))


def build_fleet(plane=None, seed=11, devices=50):
    data_rng = np.random.default_rng(4242)

    def trainer_factory(profile):
        store = ExampleStore(ttl_s=None)
        store.add_batch(
            data_rng.normal(size=(64, 16)),
            data_rng.integers(0, 4, size=64),
            timestamp_s=0.0,
        )
        return RealTrainer(model=MODEL, store=store)

    task = TaskConfig(
        task_id="t",
        population_name="pop",
        round_config=RoundConfig(target_participants=8),
        client_config=ClientTrainingConfig(
            epochs=2, batch_size=8, learning_rate=0.1
        ),
    )
    builder = (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=devices))
        .job(JobSchedule(600.0, 0.5))
        .diurnal(DiurnalModel(amplitude=0.0, base_eligible_fraction=0.7,
                              mean_eligible_minutes=240.0))
        .population("pop", tasks=[task], model=INIT,
                    trainer_factory=trainer_factory)
    )
    if plane is not None:
        builder.training_plane(plane)
    return builder.build()


def run(plane=None, seed=11, days=0.12):
    fleet = build_fleet(plane, seed)
    fleet.run_days(days)
    return fleet


def test_builder_rejects_unknown_plane():
    with pytest.raises(FleetValidationError, match="training_plane"):
        build_fleet("speculative")


def test_cohort_is_the_default_and_planes_are_wired():
    fleet = build_fleet()
    assert fleet.config.training_plane == "cohort"
    assert set(fleet.cohort_planes) == {"pop"}
    per_device = build_fleet("per_device")
    assert per_device.cohort_planes == {}


def test_cohort_plane_actually_executes_cohorts():
    fleet = run()
    plane = fleet.cohort_planes["pop"]
    assert plane.executions > 0
    assert plane.workloads_executed > plane.executions  # real batching
    assert plane.largest_cohort > 1
    assert fleet.report().rounds_committed > 0


def test_cohort_matches_per_device_byte_identically():
    cohort = run("cohort")
    per_device = run("per_device")
    assert cohort.report() == per_device.report()
    assert cohort.health_report().to_dict() == per_device.health_report().to_dict()
    assert np.array_equal(
        cohort.global_model("pop").to_vector(),
        per_device.global_model("pop").to_vector(),
    )


def test_cohort_plane_is_deterministic():
    a, b = run("cohort"), run("cohort")
    assert a.report() == b.report()
    assert np.array_equal(
        a.global_model("pop").to_vector(), b.global_model("pop").to_vector()
    )
    assert a.loop.events_processed == b.loop.events_processed


def test_synthetic_trainer_fleets_have_no_planes():
    fleet = (
        FLFleet.builder()
        .seed(3)
        .devices(PopulationConfig(num_devices=30))
        .population(
            "pop",
            tasks=[TaskConfig(
                task_id="t", population_name="pop",
                round_config=RoundConfig(target_participants=5),
            )],
            model=INIT,
        )
        .build()
    )
    assert fleet.cohort_planes == {}
