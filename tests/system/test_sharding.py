"""Control-plane sharding (ISSUE 10): the consistent-hash ShardRouter,
shard-scoped routes and admission, the per-shard aggregation tree, and
the equivalence bars:

* ``selector_shards=1`` (and the knob left at its default) is
  byte-identical to the pre-sharding control plane;
* every shard count is same-seed deterministic AND snapshot/restore
  exact;
* consistent hashing is *stable*: re-attaching a drained population
  lands on the same shard, and adding a shard moves only the minimal
  set of tenants (unrelated tenants never reshuffle).
"""

import numpy as np
import pytest

from repro import (
    FLFleet,
    FleetValidationError,
    PopulationSpec,
    RoundConfig,
    TaskConfig,
)
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.population import PopulationConfig
from repro.system.sharding import ShardRouter

HOUR = 3600.0

MODEL = LogisticRegression(input_dim=4, n_classes=3)
INIT = MODEL.init(np.random.default_rng(0))


def task_for(name):
    return TaskConfig(
        task_id=f"{name}/train",
        population_name=name,
        round_config=RoundConfig(
            target_participants=8,
            selection_timeout_s=60,
            reporting_timeout_s=150,
        ),
    )


def build_fleet(shards=None, seed=5, devices=200, selectors=4, tenants=3):
    builder = (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=devices))
        .selectors(selectors)
        .job(JobSchedule(900.0, 0.5))
    )
    if shards is not None:
        builder = builder.selector_shards(shards)
    for t in range(tenants):
        name = f"pop{t}"
        builder = builder.population(name, tasks=[task_for(name)], model=INIT)
    return builder.build()


# -- ShardRouter ------------------------------------------------------------------


def test_router_is_deterministic():
    a = ShardRouter(num_selectors=8, num_shards=4)
    b = ShardRouter(num_selectors=8, num_shards=4)
    names = [f"tenant{i}" for i in range(50)]
    assert a.assignments(names) == b.assignments(names)


def test_router_single_shard_owns_everything():
    router = ShardRouter(num_selectors=4, num_shards=1)
    assert router.shard_of("anything") == 0
    assert router.selector_indices(0) == (0, 1, 2, 3)
    assert router.selector_indices_for("anything") == (0, 1, 2, 3)


def test_router_partitions_selectors():
    router = ShardRouter(num_selectors=8, num_shards=3)
    seen = []
    for shard in range(3):
        indices = router.selector_indices(shard)
        assert indices, "every shard needs at least one selector"
        seen.extend(indices)
    assert sorted(seen) == list(range(8))  # disjoint and complete


def test_router_spreads_tenants_across_shards():
    router = ShardRouter(num_selectors=8, num_shards=4)
    shards = {router.shard_of(f"tenant{i:03d}") for i in range(200)}
    assert shards == {0, 1, 2, 3}


def test_router_validates_shape():
    with pytest.raises(ValueError):
        ShardRouter(num_selectors=4, num_shards=0)
    with pytest.raises(ValueError):
        ShardRouter(num_selectors=4, num_shards=5)


def test_adding_a_shard_moves_only_a_minority():
    """Consistent hashing's point: growing the shard count must not
    reshuffle unrelated tenants.  Every population either stays put or
    moves to the *new* shard-count's owner — and only a minority move
    (vs. modulo hashing, which would move ~all of them)."""
    names = [f"tenant{i:04d}" for i in range(400)]
    before = ShardRouter(num_selectors=16, num_shards=4).assignments(names)
    after = ShardRouter(num_selectors=16, num_shards=5).assignments(names)
    moved = [n for n in names if before[n] != after[n]]
    # Expected movement is ~1/5 of tenants; assert well under half.
    assert 0 < len(moved) < len(names) // 2


def test_reattach_lands_on_the_same_shard():
    router = ShardRouter(num_selectors=8, num_shards=4)
    home = router.shard_of("stats")
    # Unrelated attach/drain activity cannot move it: the ring is a pure
    # function of (name, topology).
    for other in ("kbd", "asr", "ocr"):
        assert router.shard_of("stats") == home
        router.shard_of(other)
    assert ShardRouter(num_selectors=8, num_shards=4).shard_of("stats") == home


# -- builder/config validation ----------------------------------------------------


def test_builder_rejects_more_shards_than_selectors():
    with pytest.raises(FleetValidationError, match="selector_shards"):
        build_fleet(shards=8, selectors=4)


def test_builder_rejects_nonpositive_shards():
    with pytest.raises(FleetValidationError, match="selector_shards"):
        build_fleet(shards=0)


# -- shard-scoped routes and admission --------------------------------------------


def test_routes_live_only_on_owning_shard():
    fleet = build_fleet(shards=2, selectors=4)
    for t in range(3):
        name = f"pop{t}"
        owning = set(fleet.shard_selector_indices(name))
        assert owning  # never empty
        for i, selector in enumerate(fleet.selector_actors()):
            if i in owning:
                assert name in selector.routes
            else:
                assert name not in selector.routes


def test_unsharded_routes_live_everywhere():
    fleet = build_fleet(shards=None)
    for selector in fleet.selector_actors():
        for t in range(3):
            assert f"pop{t}" in selector.routes


def test_checkins_confined_to_owning_shard():
    fleet = build_fleet(shards=2, selectors=4, devices=300)
    fleet.run_for(6 * HOUR)
    for t in range(3):
        name = f"pop{t}"
        owning = set(fleet.shard_selector_indices(name))
        for i, selector in enumerate(fleet.selector_actors()):
            if i not in owning:
                assert name not in selector.routes
    # And the fleet still commits rounds for every tenant.
    report = fleet.report()
    for t in range(3):
        assert report.population(f"pop{t}").rounds_committed > 0


def test_attach_registers_only_on_owning_shard_and_drain_removes():
    fleet = build_fleet(shards=2, selectors=4)
    fleet.run_for(1 * HOUR)
    spec = PopulationSpec(
        name="stats",
        tasks=[task_for("stats")],
        initial_params=INIT,
        membership_fraction=0.5,
    )
    fleet.attach_population(spec)
    owning = set(fleet.shard_selector_indices("stats"))
    for i, selector in enumerate(fleet.selector_actors()):
        assert ("stats" in selector.routes) == (i in owning)
    fleet.run_for(2 * HOUR)
    fleet.drain_population("stats", deadline_s=2 * HOUR)
    for selector in fleet.selector_actors():
        assert "stats" not in selector.routes


def test_reattached_population_returns_to_its_shard():
    fleet = build_fleet(shards=2, selectors=4)
    spec = PopulationSpec(
        name="stats",
        tasks=[task_for("stats")],
        initial_params=INIT,
        membership_fraction=0.5,
    )
    fleet.run_for(1 * HOUR)
    fleet.attach_population(spec)
    home = set(fleet.shard_selector_indices("stats"))
    fleet.run_for(2 * HOUR)
    fleet.drain_population("stats", deadline_s=2 * HOUR)
    respec = PopulationSpec(
        name="stats",
        tasks=[
            TaskConfig(
                task_id="stats/train2",
                population_name="stats",
                round_config=RoundConfig(
                    target_participants=8,
                    selection_timeout_s=60,
                    reporting_timeout_s=150,
                ),
            )
        ],
        initial_params=INIT,
        membership_fraction=0.5,
    )
    fleet.attach_population(respec)
    assert set(fleet.shard_selector_indices("stats")) == home
    for i, selector in enumerate(fleet.selector_actors()):
        assert ("stats" in selector.routes) == (i in home)


# -- aggregation tree -------------------------------------------------------------


def test_sharded_round_folds_through_shard_aggregators():
    fleet = build_fleet(shards=4, selectors=4, devices=300)
    fleet.run_for(6 * HOUR)
    report = fleet.report()
    committed = sum(p.rounds_committed for p in report.populations)
    assert committed > 0
    folds = sum(
        count
        for name, count in fleet.dashboard.counters().items()
        if name.startswith("shards/") and name.endswith("/folds")
    )
    assert folds > 0  # rounds folded through the tree, not the flat funnel


def test_flat_fleet_records_no_shard_folds():
    fleet = build_fleet(shards=1, selectors=4)
    fleet.run_for(4 * HOUR)
    assert not any(
        name.startswith("shards/") for name in fleet.dashboard.counters()
    )


# -- equivalence bars -------------------------------------------------------------


def run_report(shards, seed=5, hours=6):
    fleet = build_fleet(shards=shards, seed=seed)
    fleet.run_for(hours * HOUR)
    return fleet.report(), fleet


def test_one_shard_is_byte_identical_to_unsharded():
    sharded, fleet_s = run_report(1)
    flat, fleet_f = run_report(None)
    assert sharded == flat
    assert (
        fleet_s.health_report().to_dict() == fleet_f.health_report().to_dict()
    )
    assert fleet_s.loop.events_processed == fleet_f.loop.events_processed


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_same_seed_same_report_at_every_shard_count(shards):
    report_a, fleet_a = run_report(shards)
    report_b, fleet_b = run_report(shards)
    assert report_a == report_b
    assert fleet_a.loop.events_processed == fleet_b.loop.events_processed


def test_different_shard_counts_may_differ_but_all_commit():
    """Sharding legitimately changes trajectories (selector draws come
    from the shard pool); the invariant is progress, not identity."""
    for shards in (1, 2, 4):
        report, _ = run_report(shards)
        assert sum(p.rounds_committed for p in report.populations) > 0


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_snapshot_restore_exact_at_every_shard_count(shards, tmp_path):
    path = tmp_path / f"fleet{shards}.snapshot"
    fleet = build_fleet(shards=shards)
    fleet.run_for(3 * HOUR)
    fleet.snapshot(path)
    fleet.run_for(3 * HOUR)
    uninterrupted = fleet.report()

    restored = FLFleet.restore(path)
    restored.run_for(3 * HOUR)
    assert restored.report() == uninterrupted
    assert restored.loop.events_processed == fleet.loop.events_processed
