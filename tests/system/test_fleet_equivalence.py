"""Seed equivalence of the buffered model plane at fleet scale.

The same seed must produce the identical ``RunReport`` — and identical
committed model bytes — whether the model plane runs buffered (default)
or functional (the pre-buffering implementation kept as the perf-harness
baseline).  This is the system-level guarantee that the in-place rewrite
changed allocation behaviour and nothing else.
"""

import numpy as np
import pytest

from repro import FLFleet
from repro.core.config import ClientTrainingConfig, RoundConfig, TaskConfig
from repro.device.example_store import ExampleStore
from repro.device.runtime import RealTrainer
from repro.nn.models import MLPClassifier
from repro.nn.parameters import buffered_math_enabled, set_buffered_math
from repro.sim.population import PopulationConfig


@pytest.fixture(autouse=True)
def restore_buffered_mode():
    previous = buffered_math_enabled()
    yield
    set_buffered_math(previous)


def build_and_run(buffered: bool, days: float = 0.2):
    set_buffered_math(buffered)
    model = MLPClassifier(input_dim=8, hidden_dims=(16,), n_classes=4)
    params = model.init(np.random.default_rng(0))
    data_rng = np.random.default_rng(99)
    w_true = data_rng.normal(size=(8, 4))

    def trainer_factory(profile):
        store = ExampleStore(ttl_s=None)
        x = data_rng.normal(size=(40, 8))
        y = (x @ w_true).argmax(axis=1)
        store.add_batch(x, y, timestamp_s=0.0)
        return RealTrainer(model=model, store=store)

    task = TaskConfig(
        task_id="t",
        population_name="pop",
        round_config=RoundConfig(target_participants=15),
        client_config=ClientTrainingConfig(
            epochs=2, batch_size=8, learning_rate=0.3, clip_update_norm=1.0
        ),
    )
    fleet = (
        FLFleet.builder()
        .seed(11)
        .devices(PopulationConfig(num_devices=120))
        .population("pop", tasks=[task], model=params,
                    trainer_factory=trainer_factory)
        .build()
    )
    fleet.run_days(days)
    report = fleet.report().to_operational_dict()
    health = fleet.health_report().to_dict()
    ckpt = (
        fleet.store.latest("pop").to_params().to_vector()
        if fleet.store.has_checkpoint("pop")
        else None
    )
    return report, health, ckpt


def test_functional_and_buffered_fleets_are_byte_identical():
    report_b, health_b, ckpt_b = build_and_run(buffered=True)
    report_f, health_f, ckpt_f = build_and_run(buffered=False)
    assert report_b == report_f
    assert health_b == health_f
    assert ckpt_b is not None, "equivalence run must commit at least one round"
    np.testing.assert_array_equal(ckpt_b, ckpt_f)


def test_same_seed_same_report_within_buffered_mode():
    report_1, _, ckpt_1 = build_and_run(buffered=True, days=0.15)
    report_2, _, ckpt_2 = build_and_run(buffered=True, days=0.15)
    assert report_1 == report_2
    if ckpt_1 is None:
        assert ckpt_2 is None
    else:
        np.testing.assert_array_equal(ckpt_1, ckpt_2)
