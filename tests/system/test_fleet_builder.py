"""FleetBuilder: topology validation happens before anything spawns."""

import numpy as np
import pytest

from repro import (
    FLFleet,
    FleetValidationError,
    RoundConfig,
    TaskConfig,
)
from repro.nn.models import LogisticRegression
from repro.sim.population import PopulationConfig


def params(seed=0, dim=3, classes=2):
    return LogisticRegression(input_dim=dim, n_classes=classes).init(
        np.random.default_rng(seed)
    )


def task(task_id, population, target=10):
    return TaskConfig(
        task_id=task_id,
        population_name=population,
        round_config=RoundConfig(
            target_participants=target,
            selection_timeout_s=60,
            reporting_timeout_s=120,
        ),
    )


def base_builder(num_devices=60):
    return (
        FLFleet.builder()
        .seed(3)
        .devices(PopulationConfig(num_devices=num_devices))
        .selectors(2)
    )


def test_duplicate_population_name_rejected():
    builder = base_builder().population("a", tasks=[task("a/t", "a")], model=params())
    with pytest.raises(FleetValidationError, match="duplicate population"):
        builder.population("a", tasks=[task("a/t2", "a")], model=params())


def test_empty_task_list_rejected():
    with pytest.raises(FleetValidationError, match="no tasks"):
        base_builder().population("a", tasks=[], model=params())


def test_task_targeting_other_population_rejected():
    with pytest.raises(FleetValidationError, match="targets population"):
        base_builder().population("a", tasks=[task("b/t", "b")], model=params())


def test_duplicate_task_id_rejected():
    with pytest.raises(FleetValidationError, match="duplicate task id"):
        base_builder().population(
            "a", tasks=[task("a/t", "a"), task("a/t", "a")], model=params()
        )


def test_membership_fraction_out_of_range_rejected():
    for fraction in (0.0, -0.5, 1.5):
        with pytest.raises(FleetValidationError, match="membership fraction"):
            base_builder().population(
                "a", tasks=[task("a/t", "a")], model=params(),
                membership=fraction,
            )


def test_no_populations_rejected():
    with pytest.raises(FleetValidationError, match="no populations"):
        base_builder().build()


def test_membership_override_unknown_population_rejected():
    builder = (
        FLFleet.builder()
        .devices(
            PopulationConfig(num_devices=60),
            memberships={5: ("a", "ghost")},
        )
        .population("a", tasks=[task("a/t", "a")], model=params())
    )
    with pytest.raises(FleetValidationError, match="unknown population"):
        builder.build()


def test_membership_override_unknown_device_rejected():
    builder = (
        FLFleet.builder()
        .devices(PopulationConfig(num_devices=60), memberships={999: ("a",)})
        .population("a", tasks=[task("a/t", "a")], model=params())
    )
    with pytest.raises(FleetValidationError, match="unknown device"):
        builder.build()


def test_validation_failures_spawn_nothing():
    builder = (
        FLFleet.builder()
        .devices(PopulationConfig(num_devices=60), memberships={999: ("a",)})
        .population("a", tasks=[task("a/t", "a")], model=params())
    )
    with pytest.raises(FleetValidationError):
        builder.build()
    # The failed build left no half-constructed fleet behind: a corrected
    # builder still works from scratch.
    fleet = (
        FLFleet.builder()
        .devices(PopulationConfig(num_devices=60))
        .population("a", tasks=[task("a/t", "a")], model=params())
        .build()
    )
    assert fleet.population_names == ("a",)
    assert len(fleet.devices) == 60


def test_membership_overrides_and_fractions_applied():
    fleet = (
        base_builder(num_devices=80)
        .devices(
            PopulationConfig(num_devices=80),
            memberships={0: ("a",), 1: ("a", "b"), 2: ()},
        )
        .population("a", tasks=[task("a/t", "a")], model=params())
        .population("b", tasks=[task("b/t", "b")], model=params(1), membership=0.5)
        .build()
    )
    a, b = fleet.members_of("a"), fleet.members_of("b")
    assert 0 in a and 0 not in b
    assert 1 in a and 1 in b
    assert 2 not in a and 2 not in b
    # Fraction sampling is a strict, non-empty subset of the fleet.
    assert 0 < len(b) < 80
    # Devices carry memberships in population-declaration order.
    device_1 = fleet.devices[1]
    assert device_1.memberships == ("a", "b")
    assert set(device_1.trainers) == {"a", "b"}


def test_pool_cap_uses_largest_task_goal():
    """The selector quota must be sized to the largest round any task in
    the population runs, not whichever task happens to be listed first."""
    small = task("a/small", "a", target=10)    # selection goal 13
    large = task("a/large", "a", target=100)   # selection goal 130
    fleet = (
        base_builder()
        .population("a", tasks=[small, large], model=params())
        .build()
    )
    selector = fleet.actors.actor_of(fleet.selectors[0])
    assert selector.route_of("a").pool_cap == 2 * large.round_config.selection_goal
