"""FLFleet end to end: concurrent populations, typed reports, determinism."""

import numpy as np
import pytest

from repro import (
    FLFleet,
    FLSystem,
    FLSystemConfig,
    RoundConfig,
    TaskConfig,
    TaskKind,
)
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.population import PopulationConfig


def round_config(target=10):
    return RoundConfig(
        target_participants=target, selection_timeout_s=60, reporting_timeout_s=150
    )


def build_two_population_fleet(seed=19, devices=200):
    kbd_model = LogisticRegression(input_dim=4, n_classes=3)
    stats_model = LogisticRegression(input_dim=2, n_classes=2)
    return (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=devices))
        .selectors(2)
        .job(JobSchedule(900.0, 0.5))
        .population(
            "kbd",
            tasks=[
                TaskConfig(
                    task_id="kbd/train",
                    population_name="kbd",
                    round_config=round_config(),
                )
            ],
            model=kbd_model.init(np.random.default_rng(0)),
        )
        .population(
            "stats",
            tasks=[
                TaskConfig(
                    task_id="stats/eval",
                    population_name="stats",
                    kind=TaskKind.EVALUATION,
                    round_config=round_config(),
                )
            ],
            model=stats_model.init(np.random.default_rng(1)),
            membership=0.6,
        )
        .build()
    )


@pytest.fixture(scope="module")
def two_population_fleet():
    fleet = build_two_population_fleet()
    fleet.run_for(3 * 3600)
    return fleet


def test_both_populations_commit_rounds(two_population_fleet):
    report = two_population_fleet.report()
    assert report.population_names == ("kbd", "stats")
    for pop in report.populations:
        assert pop.rounds_committed >= 3
    # Fleet totals are the sum of the tenants'.
    assert report.rounds_total == sum(p.rounds_total for p in report.populations)
    assert report.rounds_committed == sum(
        p.rounds_committed for p in report.populations
    )


def test_shared_fleet_one_event_loop(two_population_fleet):
    fleet = two_population_fleet
    # One loop, one actor system, one device fleet; two coordinators.
    assert len(fleet.devices) == 200
    assert set(fleet.coordinators) == {"kbd", "stats"}
    kbd = fleet.actors.actor_of(fleet.coordinators["kbd"])
    stats = fleet.actors.actor_of(fleet.coordinators["stats"])
    assert kbd is not None and stats is not None
    assert kbd is not stats
    # Each population's model advanced independently in the shared store.
    assert fleet.store.has_checkpoint("kbd")
    assert fleet.store.has_checkpoint("stats")


def test_round_ids_never_collide_across_populations(two_population_fleet):
    fleet = two_population_fleet
    kbd_ids = {r.round_id for r in fleet.results_for("kbd")}
    stats_ids = {r.round_id for r in fleet.results_for("stats")}
    assert kbd_ids and stats_ids
    assert kbd_ids.isdisjoint(stats_ids)


def test_dual_members_record_sessions_in_both(two_population_fleet):
    fleet = two_population_fleet
    dual_ids = fleet.members_of("kbd") & fleet.members_of("stats")
    assert dual_ids
    interleaved = [
        d
        for d in fleet.devices
        if d.health.sessions_by_population.get("kbd", 0) > 0
        and d.health.sessions_by_population.get("stats", 0) > 0
    ]
    assert interleaved, "no device interleaved sessions across populations"
    # Session accounting is consistent per device.
    for device in fleet.devices:
        assert (
            sum(device.health.sessions_by_population.values())
            == device.health.sessions_started
        )


def test_population_reports_match_dashboard_series(two_population_fleet):
    fleet = two_population_fleet
    report = fleet.report()
    for pop in report.populations:
        outcome = fleet.dashboard.series(f"pop/{pop.name}/rounds/outcome")
        assert len(outcome) == pop.rounds_total
        assert sum(outcome.values) == pop.rounds_committed
        assert (
            fleet.dashboard.counter(f"pop/{pop.name}/rounds/committed")
            == pop.rounds_committed
        )
        completed = fleet.dashboard.series(
            f"pop/{pop.name}/rounds/completed_devices"
        )
        committed_mask = [v == 1.0 for v in outcome.values]
        committed_completed = [
            v for v, m in zip(completed.values, committed_mask) if m
        ]
        if committed_completed:
            assert np.isclose(
                float(np.mean(committed_completed)), pop.mean_completed_per_round
            )


def test_health_report_population_split(two_population_fleet):
    report = two_population_fleet.report()
    by_pop = report.health.sessions_by_population
    assert set(by_pop) == {"kbd", "stats"}
    assert by_pop["kbd"] > 0 and by_pop["stats"] > 0
    total_sessions = sum(
        d.health.sessions_started for d in two_population_fleet.devices
    )
    assert sum(by_pop.values()) == total_sessions
    # device_sessions on each PopulationReport agrees with the health split.
    for pop in report.populations:
        assert pop.device_sessions == by_pop[pop.name]


def test_seeded_fleets_produce_identical_reports():
    first = build_two_population_fleet(seed=29, devices=120)
    second = build_two_population_fleet(seed=29, devices=120)
    first.run_for(2 * 3600)
    second.run_for(2 * 3600)
    assert first.report() == second.report()


def test_differently_seeded_fleets_differ():
    first = build_two_population_fleet(seed=29, devices=120)
    second = build_two_population_fleet(seed=31, devices=120)
    first.run_for(2 * 3600)
    second.run_for(2 * 3600)
    assert first.report() != second.report()


def test_run_report_matches_legacy_dicts():
    """The typed report reproduces the legacy summary dicts exactly."""
    config = FLSystemConfig(
        seed=5,
        population=PopulationConfig(num_devices=150),
        num_selectors=2,
        job=JobSchedule(1200.0, 0.5),
    )
    system = FLSystem(config)
    task = TaskConfig(
        task_id="pop/t", population_name="pop", round_config=round_config()
    )
    model = LogisticRegression(input_dim=3, n_classes=2)
    system.deploy([task], model.init(np.random.default_rng(0)))
    system.run_for(2 * 3600)

    report = system.report()
    legacy = system.operational_summary()
    assert report.to_operational_dict() == legacy
    assert report.rounds_total == len(system.round_results)
    assert report.rounds_committed == len(system.committed_rounds)
    assert report.health.to_dict() == system.device_health_summary()
    # The single population's report covers the whole run.
    (pop,) = report.populations
    assert pop.name == "pop"
    assert pop.rounds_total == report.rounds_total
    assert pop.member_devices == 150
    (task_report,) = pop.tasks
    assert task_report.task_id == "pop/t"
    assert task_report.rounds_committed == report.rounds_committed


def test_fleet_run_before_build_install_rejected():
    fleet = FLFleet()
    with pytest.raises(RuntimeError, match="deploy"):
        fleet.run_for(10.0)
