"""Population lifecycle plane: attach/drain tenants on a live fleet plus
checkpointed fleet restarts.

The correctness bars (ISSUE 5):

* ``attach_population`` on a *running* fleet commits rounds for the new
  tenant;
* ``drain_population`` ends with zero device-side sessions/memberships
  for the tenant and Selectors reporting no route;
* ``FLFleet.restore(snapshot)`` then ``run_days(d)`` reports exactly what
  the uninterrupted fleet reports over the same horizon;
* same seed + same attach/drain script => byte-identical ``RunReport``,
  whatever the idle/training-plane levers say.
"""

import numpy as np
import pytest

from repro import (
    FLFleet,
    FleetValidationError,
    PopulationSpec,
    PopulationState,
    RoundConfig,
    TaskConfig,
)
from repro.core.config import ClientTrainingConfig
from repro.device.example_store import ExampleStore
from repro.device.runtime import RealTrainer
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression, MLPClassifier
from repro.sim.diurnal import DiurnalModel
from repro.sim.population import PopulationConfig
from repro.system import SnapshotError, read_manifest

HOUR = 3600.0

KBD_MODEL = LogisticRegression(input_dim=4, n_classes=3)
KBD_INIT = KBD_MODEL.init(np.random.default_rng(0))
STATS_MODEL = LogisticRegression(input_dim=2, n_classes=2)
STATS_INIT = STATS_MODEL.init(np.random.default_rng(1))


def round_config(target=8):
    return RoundConfig(
        target_participants=target,
        selection_timeout_s=60,
        reporting_timeout_s=150,
    )


def task_for(name, task="train"):
    return TaskConfig(
        task_id=f"{name}/{task}",
        population_name=name,
        round_config=round_config(),
    )


def stats_spec(membership=0.5):
    return PopulationSpec(
        name="stats",
        tasks=[task_for("stats")],
        initial_params=STATS_INIT,
        membership_fraction=membership,
    )


def build_fleet(seed=5, devices=150, **levers):
    builder = (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=devices))
        .selectors(2)
        .job(JobSchedule(900.0, 0.5))
        .population("kbd", tasks=[task_for("kbd")], model=KBD_INIT)
    )
    for lever, value in levers.items():
        getattr(builder, lever)(value)
    return builder.build()


# -- attach on a live fleet -------------------------------------------------------


@pytest.mark.parametrize("idle_plane", ["vectorized", "actor"])
def test_attach_population_mid_run_commits_rounds(idle_plane):
    fleet = build_fleet(idle_plane=idle_plane)
    fleet.run_for(2 * HOUR)
    before = fleet.report()
    assert before.population_names == ("kbd",)

    runtime = fleet.attach_population(stats_spec())
    assert runtime.state is PopulationState.ATTACHED
    assert runtime.attached_at_s == 2 * HOUR
    assert runtime.member_ids
    for selector in fleet.selector_actors():
        assert "stats" in selector.routes
    assert fleet.population_names == ("kbd", "stats")

    fleet.run_for(3 * HOUR)
    report = fleet.report()
    stats = report.population("stats")
    assert stats.rounds_committed > 0
    assert stats.device_sessions > 0
    # The incumbent keeps training, and round ids never collide.
    assert report.population("kbd").rounds_committed > before.rounds_committed
    kbd_ids = {r.round_id for r in fleet.results_for("kbd")}
    stats_ids = {r.round_id for r in fleet.results_for("stats")}
    assert kbd_ids and stats_ids and kbd_ids.isdisjoint(stats_ids)
    # Only member devices ever ran a stats session.
    members = fleet.members_of("stats")
    for device in fleet.devices:
        if device.health.sessions_by_population.get("stats", 0):
            assert device.device_id in members


def test_attach_with_pinned_member_ids():
    fleet = build_fleet()
    fleet.run_for(HOUR)
    runtime = fleet.attach_population(
        stats_spec(), member_ids=[3, 14, 15, 92, 65, 35]
    )
    assert runtime.member_ids == {3, 14, 15, 92, 65, 35}
    for device_id in sorted(runtime.member_ids):
        assert "stats" in fleet.devices[device_id].memberships


def test_attach_validation():
    # Before the fleet exists, attach has nowhere to go.
    with pytest.raises(RuntimeError, match="build the fleet"):
        FLFleet().attach_population(stats_spec())
    fleet = build_fleet()
    with pytest.raises(FleetValidationError, match="already attached"):
        fleet.attach_population(
            PopulationSpec(
                name="kbd", tasks=[task_for("kbd")], initial_params=KBD_INIT
            )
        )
    with pytest.raises(FleetValidationError, match="unknown member device"):
        fleet.attach_population(stats_spec(), member_ids=[10_000])
    with pytest.raises(FleetValidationError, match="no member devices"):
        fleet.attach_population(stats_spec(membership=1e-9))


def test_builder_populations_go_through_attach():
    """Builder-time populations are 'attach before start' — same runtime
    records, same code path, no second wiring."""
    fleet = build_fleet()
    runtime = fleet.lifecycle.runtime("kbd")
    assert runtime.state is PopulationState.ATTACHED
    assert runtime.attached_at_s == 0.0
    assert runtime.index == 0


# -- drain -----------------------------------------------------------------------


def drained_postconditions(fleet, name):
    for selector in fleet.selector_actors():
        assert name not in selector.routes
    for device in fleet.devices:
        assert name not in device.memberships
        assert name not in device.trainers
        assert device._active_population != name
        assert device.scheduler.running != name
        assert not device.scheduler.is_queued(name)
    assert name not in fleet.population_names
    assert name not in fleet.coordinators
    assert name not in fleet.cohort_planes


@pytest.mark.parametrize("idle_plane", ["vectorized", "actor"])
def test_drain_population_retires_cleanly(idle_plane):
    fleet = build_fleet(idle_plane=idle_plane)
    fleet.run_for(HOUR)
    fleet.attach_population(stats_spec())
    fleet.run_for(2 * HOUR)
    committed_before = fleet.report().population("stats").rounds_committed
    assert committed_before > 0

    report = fleet.drain_population("stats", deadline_s=2 * HOUR)
    assert report.clean
    assert report.forced_session_interrupts == 0
    assert not report.forced_round_abort
    assert report.rounds_committed >= committed_before
    assert report.drained_at_s <= report.drain_started_at_s + 2 * HOUR
    drained_postconditions(fleet, "stats")
    # The final committed checkpoint survives the tenant.
    final = fleet.store.latest("stats")
    assert final.round_number == report.final_round_number
    assert fleet.global_model("stats").num_parameters == STATS_INIT.num_parameters

    # With one hosted tenant left, implicit global_model() resolves to it
    # (the retired tenant stays reachable by name only).
    assert (
        fleet.global_model().num_parameters
        == fleet.global_model("kbd").num_parameters
    )

    # The fleet keeps running for the remaining tenant, and the drained
    # tenant's history stays in the run report.
    kbd_before = fleet.report().population("kbd").rounds_committed
    fleet.run_for(2 * HOUR)
    after = fleet.report()
    assert after.population("kbd").rounds_committed > kbd_before
    assert after.population("stats").rounds_committed == report.rounds_committed
    assert fleet.lifecycle.find("stats").state is PopulationState.DRAINED


def test_drain_zero_deadline_forces_stragglers():
    """deadline_s=0 skips the quiesce phase entirely: whatever is in
    flight is forcibly terminated, and the postconditions still hold."""
    fleet = build_fleet()
    fleet.attach_population(stats_spec(membership=1.0))
    # Run until some device is mid-session for the tenant so the force
    # path has something to interrupt.
    for _ in range(2000):
        fleet.run_for(60.0)
        if any(d._active_population == "stats" for d in fleet.devices):
            break
    else:
        pytest.fail("no stats session ever started")
    report = fleet.drain_population("stats", deadline_s=0.0)
    assert not report.clean
    assert report.forced_session_interrupts > 0 or report.forced_round_abort
    assert report.drained_at_s == report.drain_started_at_s
    drained_postconditions(fleet, "stats")
    # Forced interrupts surface in device health as interrupted rounds.
    fleet.run_for(HOUR)  # the fleet keeps running fine afterwards
    assert fleet.report().population("kbd").rounds_committed > 0


def test_drain_validation():
    fleet = build_fleet()
    with pytest.raises(FleetValidationError, match="not attached"):
        fleet.drain_population("nope")
    fleet.drain_population("kbd")
    with pytest.raises(FleetValidationError, match="not attached"):
        fleet.drain_population("kbd")


def test_failed_attach_leaves_no_server_state(monkeypatch):
    """Attach is atomic: if plan generation blows up mid-attach, no
    checkpoint, index, or registry entry survives."""
    fleet = build_fleet()
    fleet.run_for(HOUR)
    index_before = fleet.lifecycle._next_index
    writes_before = fleet.store.write_count

    def explode(**kwargs):
        raise RuntimeError("plan compiler fell over")

    monkeypatch.setattr("repro.system.lifecycle.generate_plan", explode)
    with pytest.raises(RuntimeError, match="plan compiler"):
        fleet.attach_population(stats_spec())
    assert not fleet.store.has_checkpoint("stats")
    assert fleet.store.write_count == writes_before
    assert fleet.lifecycle._next_index == index_before
    assert "stats" not in fleet.population_names
    monkeypatch.undo()
    # The fleet is undamaged: the same attach succeeds afterwards.
    fleet.attach_population(stats_spec())
    fleet.run_for(2 * HOUR)
    assert fleet.report().population("stats").rounds_committed > 0


class ExplodingFactory:
    def __call__(self, profile):
        raise RuntimeError("no trainer for you")


def test_failed_trainer_factory_leaves_fleet_untouched():
    """User trainer factories run before any server state is written, so
    a raising factory cannot leave a half-enrolled tenant behind."""
    fleet = build_fleet()
    fleet.run_for(HOUR)
    spec = stats_spec()
    spec.trainer_factory = ExplodingFactory()
    with pytest.raises(RuntimeError, match="no trainer"):
        fleet.attach_population(spec)
    assert "stats" not in fleet.population_names
    assert not fleet.store.has_checkpoint("stats")
    for selector in fleet.selector_actors():
        assert "stats" not in selector.routes
    for device in fleet.devices:
        assert "stats" not in device.memberships
    # The same name attaches cleanly afterwards — and samples the exact
    # member set an untroubled attach would have (the failed attempt
    # consumed nothing from the tenant's membership stream).
    reference = build_fleet()
    reference.run_for(HOUR)
    expected_members = reference.attach_population(stats_spec()).member_ids
    runtime = fleet.attach_population(stats_spec())
    assert runtime.member_ids == expected_members
    fleet.run_for(2 * HOUR)
    assert fleet.report().population("stats").rounds_committed > 0


def test_failed_snapshot_preserves_existing_file(tmp_path):
    """Snapshots write-then-rename: a pickling failure must not clobber a
    good snapshot already at the path (nor leave a truncated one)."""
    path = tmp_path / "fleet.snap"
    fleet = build_fleet(seed=3, devices=60)
    fleet.run_for(HOUR)
    good = fleet.snapshot(path)

    broken = build_fleet(seed=4, devices=40)
    broken.run_for(HOUR)
    spec = stats_spec()
    spec.trainer_factory = lambda profile: None  # closure: unpicklable
    broken.attach_population(spec)
    with pytest.raises(SnapshotError, match="not picklable"):
        broken.snapshot(path)
    # The original snapshot survives intact.
    assert read_manifest(path) == good
    assert FLFleet.restore(path).loop.now == HOUR
    assert not list(tmp_path.glob("*.tmp-*"))


def test_drain_handles_respawned_coordinator():
    """A Sec. 4.4 respawn replaces the coordinator behind the lifecycle
    plane's back; drain must gate and retire the *live* incarnation, not
    the stale recorded ref."""
    fleet = build_fleet()
    fleet.run_for(HOUR)
    original_ref = fleet.coordinators["kbd"]
    fleet.actors.crash(original_ref)
    fleet.run_for(HOUR)  # selectors respawn the coordinator via the lock
    live = fleet.locks.owner_of("coordinator/kbd")
    assert live is not None and live != original_ref and live.alive

    report = fleet.drain_population("kbd", deadline_s=2 * HOUR)
    drained_postconditions(fleet, "kbd")
    # The live incarnation was actually stopped and its lock released.
    assert not live.alive
    assert fleet.locks.owner_of("coordinator/kbd") is None
    rounds_at_drain = fleet.report().rounds_total
    fleet.run_for(2 * HOUR)
    assert fleet.report().rounds_total == rounds_at_drain  # no zombie rounds
    assert report.rounds_committed > 0


def test_late_message_for_drained_population_is_not_misrouted():
    """A message *naming* a removed population must not fall back to the
    single surviving route (only legacy name-less messages may)."""
    fleet = build_fleet()
    fleet.attach_population(stats_spec())
    fleet.run_for(2 * HOUR)
    fleet.drain_population("stats")
    (survivor,) = fleet.selector_actors()[0].routes.values()
    selector = fleet.selector_actors()[0]
    assert selector._lookup("stats") is None
    assert selector._lookup("") is survivor
    assert selector._lookup(None) is survivor


def test_reattach_same_name_after_drain():
    fleet = build_fleet(devices=100)
    fleet.run_for(HOUR)
    fleet.attach_population(stats_spec())
    fleet.run_for(2 * HOUR)
    first = fleet.drain_population("stats")
    assert first.rounds_committed > 0

    first_final = fleet.store.latest("stats").round_number

    second_runtime = fleet.attach_population(stats_spec())
    assert second_runtime.index == 2  # indices are never reused
    # The new incarnation's initial checkpoint lands at its round-id
    # base: monotonic past the drained incarnation's final commit, which
    # stays in the store history.
    assert fleet.store.latest("stats").round_number == 2_000_000
    history_rounds = [c.round_number for c in fleet.store.history("stats")]
    assert history_rounds == sorted(history_rounds)
    assert first_final in history_rounds
    fleet.run_for(2 * HOUR)
    report = fleet.report()
    stats_reports = [p for p in report.populations if p.name == "stats"]
    assert len(stats_reports) == 2
    assert stats_reports[1].rounds_committed > 0
    # The name-keyed accessor resolves to the *live* incarnation.
    assert report.population("stats") == stats_reports[1]
    # Round ids of the two incarnations live in disjoint ranges.
    second_ids = {r.round_id for r in second_runtime.results}
    assert all(r > 2_000_000 for r in second_ids)
    # A snapshot manifest keeps the incarnations' headline rounds apart:
    # the drained entry reports its own last commit, not the re-attached
    # incarnation's store-latest.
    from repro.system.lifecycle import build_manifest

    entries = [
        e for e in build_manifest(fleet).populations if e.name == "stats"
    ]
    assert entries[0].state == "drained"
    assert entries[0].round_number == first_final
    assert entries[1].state == "attached"
    assert entries[1].round_number > 2_000_000


# -- determinism across attach/drain scripts -------------------------------------


def scripted_run(seed, **levers):
    fleet = build_fleet(seed=seed, **levers)
    fleet.run_for(2 * HOUR)
    fleet.attach_population(stats_spec())
    fleet.run_for(3 * HOUR)
    drain = fleet.drain_population("stats", deadline_s=HOUR)
    fleet.run_for(2 * HOUR)
    return fleet, drain


@pytest.mark.parametrize("idle_plane", ["vectorized", "actor"])
def test_attach_drain_script_is_deterministic(idle_plane):
    fleet_a, drain_a = scripted_run(29, idle_plane=idle_plane)
    fleet_b, drain_b = scripted_run(29, idle_plane=idle_plane)
    assert drain_a == drain_b
    assert fleet_a.report() == fleet_b.report()
    assert fleet_a.loop.events_processed == fleet_b.loop.events_processed


def test_differently_seeded_scripts_differ():
    fleet_a, _ = scripted_run(29)
    fleet_b, _ = scripted_run(31)
    assert fleet_a.report() != fleet_b.report()


# -- training-plane byte-identity across the lifecycle ---------------------------

REAL_MODEL = MLPClassifier(input_dim=8, hidden_dims=(6,), n_classes=3)
REAL_INIT = REAL_MODEL.init(np.random.default_rng(2))


class RealTrainerFactory:
    """Module-level (hence picklable) factory: per-device data pinned by
    device id, full minibatches (row-exact cohort kernels)."""

    def __call__(self, profile):
        data_rng = np.random.default_rng(7_000 + profile.device_id)
        store = ExampleStore(ttl_s=None)
        store.add_batch(
            data_rng.normal(size=(48, 8)),
            data_rng.integers(0, 3, size=48),
            timestamp_s=0.0,
        )
        return RealTrainer(model=REAL_MODEL, store=store)


def real_spec():
    return PopulationSpec(
        name="ranker",
        tasks=[
            TaskConfig(
                task_id="ranker/train",
                population_name="ranker",
                round_config=round_config(),
                client_config=ClientTrainingConfig(
                    epochs=2, batch_size=8, learning_rate=0.1
                ),
            )
        ],
        initial_params=REAL_INIT,
        trainer_factory=RealTrainerFactory(),
        membership_fraction=0.8,
    )


def real_scripted_run(training_plane):
    fleet = build_fleet(
        seed=11,
        devices=60,
        training_plane=training_plane,
        diurnal=DiurnalModel(
            amplitude=0.0,
            base_eligible_fraction=0.7,
            mean_eligible_minutes=240.0,
        ),
    )
    fleet.run_for(HOUR)
    fleet.attach_population(real_spec())
    fleet.run_for(3 * HOUR)
    drain = fleet.drain_population("ranker", deadline_s=HOUR)
    fleet.run_for(HOUR)
    return fleet, drain


def test_lifecycle_is_byte_identical_across_training_planes():
    cohort, drain_cohort = real_scripted_run("cohort")
    per_device, drain_per_device = real_scripted_run("per_device")
    assert drain_cohort.rounds_committed > 0
    assert drain_cohort == drain_per_device
    assert cohort.report() == per_device.report()
    assert np.array_equal(
        cohort.global_model("ranker").to_vector(),
        per_device.global_model("ranker").to_vector(),
    )


# -- fleet snapshot / restore ----------------------------------------------------


def test_snapshot_restore_equals_uninterrupted_run(tmp_path):
    path = tmp_path / "fleet.snap"
    fleet = build_fleet(seed=19)
    fleet.run_for(2 * HOUR)
    fleet.attach_population(stats_spec())
    # Snapshot at an odd instant, rounds and sessions in flight.
    fleet.run_for(1.25 * HOUR)
    manifest = fleet.snapshot(path)
    assert manifest.seed == 19
    assert manifest.simulated_seconds == 3.25 * HOUR
    assert [p.name for p in manifest.populations] == ["kbd", "stats"]

    # The uninterrupted fleet continues; snapshotting was a pure read.
    fleet.run_for(3 * HOUR)
    uninterrupted = fleet.report()

    restored = FLFleet.restore(path)
    assert restored.loop.now == 3.25 * HOUR
    restored.run_for(3 * HOUR)
    assert restored.report() == uninterrupted
    assert restored.loop.events_processed == fleet.loop.events_processed
    for name in ("kbd", "stats"):
        assert np.array_equal(
            restored.global_model(name).to_vector(),
            fleet.global_model(name).to_vector(),
        )


def test_snapshot_restore_with_real_trainers_and_lifecycle(tmp_path):
    """The full stack at once: real models on the cohort plane, a tenant
    attached mid-run, a snapshot taken, then an identical drain + run on
    both sides of the restore."""
    path = tmp_path / "fleet.snap"
    fleet = build_fleet(
        seed=11,
        devices=60,
        diurnal=DiurnalModel(
            amplitude=0.0,
            base_eligible_fraction=0.7,
            mean_eligible_minutes=240.0,
        ),
    )
    fleet.run_for(HOUR)
    fleet.attach_population(real_spec())
    fleet.run_for(1.5 * HOUR)
    fleet.snapshot(path)

    drain_original = fleet.drain_population("ranker", deadline_s=HOUR)
    fleet.run_for(HOUR)

    restored = FLFleet.restore(path)
    drain_restored = restored.drain_population("ranker", deadline_s=HOUR)
    restored.run_for(HOUR)

    assert drain_restored == drain_original
    assert restored.report() == fleet.report()


def test_restore_rejects_non_snapshots(tmp_path):
    bogus = tmp_path / "bogus.snap"
    bogus.write_bytes(b"definitely not a snapshot")
    with pytest.raises(SnapshotError):
        FLFleet.restore(bogus)
    import pickle

    wrong_shape = tmp_path / "wrong.snap"
    wrong_shape.write_bytes(pickle.dumps({"hello": "world"}))
    with pytest.raises(SnapshotError):
        FLFleet.restore(wrong_shape)


def test_read_manifest_roundtrip(tmp_path):
    path = tmp_path / "fleet.snap"
    fleet = build_fleet(seed=3, devices=60)
    fleet.run_for(HOUR)
    written = fleet.snapshot(path)
    assert read_manifest(path) == written
    (entry,) = written.populations
    assert entry.name == "kbd"
    assert entry.state == "attached"
    assert entry.rounds_committed <= entry.rounds_total


# -- device-scheduler lever plumbing ---------------------------------------------


def test_device_scheduler_lever_reaches_devices():
    fleet = build_fleet(device_scheduler="fair_share", devices=40)
    assert all(d.scheduler.policy == "fair_share" for d in fleet.devices)
    default = build_fleet(devices=40)
    assert all(d.scheduler.policy == "fifo" for d in default.devices)


def test_fair_share_fleet_serves_both_tenants_deterministically():
    def run(seed):
        fleet = build_fleet(
            seed=seed, devices=120, device_scheduler="fair_share"
        )
        fleet.run_for(HOUR)
        fleet.attach_population(stats_spec())
        fleet.run_for(3 * HOUR)
        return fleet.report()

    report = run(13)
    assert report.population("kbd").device_sessions > 0
    assert report.population("stats").device_sessions > 0
    assert report == run(13)
