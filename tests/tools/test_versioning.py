"""Versioned plans via graph transformations (Sec. 7.3)."""

import pytest

from repro.core.config import ClientTrainingConfig, SecAggConfig, TaskKind
from repro.core.plan import generate_plan
from repro.nn.graph import OpSpec
from repro.tools.versioning import (
    IncompatiblePlanError,
    PlanRepository,
    TransformRegistry,
    default_transforms,
    generate_versioned_plan,
    transform_graph_for_runtime,
)


def default_plan():
    return generate_plan(
        task_id="t",
        kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(learning_rate=0.25),
        secagg=SecAggConfig(),
        model_nbytes=100,
    )


def test_unfuse_lowers_runtime_requirement():
    plan = default_plan()
    assert plan.device.graph.min_runtime_version() == 9
    lowered = transform_graph_for_runtime(plan.device.graph, 7)
    assert lowered.min_runtime_version() == 1
    names = lowered.op_names()
    assert "fused_train_step" not in names
    assert names.index("forward") < names.index("backward") < names.index(
        "apply_gradients"
    )


def test_unfuse_preserves_hyperparameters():
    plan = default_plan()
    lowered = transform_graph_for_runtime(plan.device.graph, 7)
    apply_op = next(op for op in lowered.ops if op.name == "apply_gradients")
    assert apply_op.attrs["learning_rate"] == 0.25


def test_compatible_graph_untouched():
    plan = default_plan()
    same = transform_graph_for_runtime(plan.device.graph, 10)
    assert same.op_names() == plan.device.graph.op_names()


def test_unliftable_op_raises():
    registry = TransformRegistry()  # no rules at all
    graph = default_plan().device.graph
    with pytest.raises(IncompatiblePlanError, match="no transform"):
        transform_graph_for_runtime(graph, 7, registry)


def test_transform_producing_still_new_op_rejected():
    registry = TransformRegistry()
    registry.register(
        "fused_train_step",
        2,
        lambda op: [OpSpec("exotic", 1, min_runtime_version=99)],
    )
    with pytest.raises(IncompatiblePlanError, match="still"):
        transform_graph_for_runtime(default_plan().device.graph, 7, registry)


def test_duplicate_rule_rejected():
    registry = default_transforms()
    with pytest.raises(ValueError, match="already registered"):
        registry.register("fused_train_step", 2, lambda op: [])


def test_versioned_plan_is_tagged():
    vplan = generate_versioned_plan(default_plan(), 8)
    assert vplan.version_tag == "runtime-8"
    assert vplan.runtime_version == 8
    assert vplan.compatible_with_runtime(8)


def test_repository_serves_appropriate_plan():
    repo = PlanRepository.build(default_plan(), [7, 8, 9, 10])
    assert repo.plan_for_runtime(10).version_tag == "unversioned"
    assert repo.plan_for_runtime(9).version_tag == "unversioned"
    assert repo.plan_for_runtime(8).version_tag == "runtime-8"
    assert repo.plan_for_runtime(7).version_tag == "runtime-7"
    assert sorted(repo.materialized_versions()) == [7, 8, 9, 10]


def test_repository_caches():
    repo = PlanRepository.build(default_plan(), [8])
    assert repo.plan_for_runtime(8) is repo.plan_for_runtime(8)


def test_repository_returns_none_when_unservable():
    registry = TransformRegistry()  # cannot lower the fused op
    repo = PlanRepository(default_plan(), registry)
    assert repo.plan_for_runtime(5) is None
    assert repo.plan_for_runtime(10) is not None
