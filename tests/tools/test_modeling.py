"""Task builder and validation (Sec. 7.1)."""

import numpy as np
import pytest

from repro.core.datasets import ClientDataset
from repro.tools.modeling import (
    FLTaskBuilder,
    TestPredicate,
    ValidationError,
    loss_decreases_after_one_step,
    loss_is_finite,
)
from repro.nn.models import LogisticRegression


def proxy(rng, n=40, d=4, c=3):
    x = rng.normal(size=(n, d))
    return ClientDataset("proxy", x, rng.integers(0, c, size=n))


def builder(rng):
    return (
        FLTaskBuilder("pop/train", "pop")
        .with_model(LogisticRegression(input_dim=4, n_classes=3), rng)
        .with_proxy_data(proxy(rng))
    )


def test_build_produces_task_plan_params(rng):
    task, plan, params = (
        builder(rng).with_test(loss_is_finite()).mark_reviewed().build()
    )
    assert task.task_id == "pop/train"
    assert plan.task_id == "pop/train"
    assert params.num_parameters == 4 * 3 + 3


def test_build_without_tests_rejected(rng):
    with pytest.raises(ValidationError, match="required"):
        builder(rng).build()


def test_failing_predicate_blocks_build(rng):
    failing = TestPredicate("always_fails", lambda m, p, d: False)
    with pytest.raises(ValidationError, match="always_fails"):
        builder(rng).with_test(failing).build()


def test_crashing_predicate_reported_as_failure(rng):
    def boom(m, p, d):
        raise RuntimeError("kaboom")

    failures = builder(rng).with_test(TestPredicate("boom", boom)).validate()
    assert len(failures) == 1
    assert "boom" in failures[0]


def test_standard_predicates_pass_on_sane_model(rng):
    b = (
        builder(rng)
        .with_test(loss_is_finite())
        .with_test(loss_decreases_after_one_step(0.1))
    )
    assert b.validate() == []


def test_validate_requires_model_and_data(rng):
    bare = FLTaskBuilder("t", "p")
    with pytest.raises(ValidationError, match="no model"):
        bare.validate()
    with_model = FLTaskBuilder("t", "p").with_model(
        LogisticRegression(2, 2), rng
    )
    with pytest.raises(ValidationError, match="proxy"):
        with_model.validate()


def test_pretrained_params_flow_through(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    pretrained = model.init(rng).scale(7.0)
    task, plan, params = (
        FLTaskBuilder("pop/t", "pop")
        .with_pretrained(model, pretrained)
        .with_proxy_data(proxy(rng))
        .with_test(loss_is_finite())
        .build()
    )
    assert params.allclose(pretrained)
