"""Per-rule fixtures: each rule fires on a seeded violation and stays
quiet on the compliant twin."""

from __future__ import annotations

import textwrap

from repro.tools.lint import lint_source


def run(source: str, path: str = "src/repro/system/example.py",
        rules: set[str] | None = None):
    return lint_source(textwrap.dedent(source), path, rules=rules)


def rule_names(findings) -> list[str]:
    return [f.rule for f in findings]


# -- no-ambient-rng -----------------------------------------------------------

class TestAmbientRng:
    def test_fires_on_numpy_global_state(self):
        findings = run("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert rule_names(findings) == ["no-ambient-rng"]
        assert "hidden global stream" in findings[0].message

    def test_fires_on_stdlib_random(self):
        findings = run("""
            import random
            x = random.random()
            random.shuffle([1, 2])
        """)
        assert rule_names(findings) == ["no-ambient-rng"] * 2

    def test_fires_on_default_rng_even_seeded(self):
        findings = run("""
            import numpy as np
            a = np.random.default_rng()
            b = np.random.default_rng(7)
        """)
        assert rule_names(findings) == ["no-ambient-rng"] * 2

    def test_fires_through_import_aliases(self):
        findings = run("""
            from numpy import random as nr
            nr.seed(0)
        """)
        assert rule_names(findings) == ["no-ambient-rng"]

    def test_quiet_on_pinned_generator_use(self):
        assert run("""
            import numpy as np

            def draw(rng: np.random.Generator) -> float:
                rng.shuffle([1, 2])
                return rng.random()
        """) == []

    def test_quiet_on_keyed_bitgen_construction(self):
        # Compression codecs derive generators from wire-carried seeds.
        assert run("""
            import numpy as np
            rng = np.random.Generator(np.random.Philox(key=5))
        """) == []

    def test_quiet_on_local_name_shadowing(self):
        # A local variable named `random` is not the stdlib module.
        assert run("""
            def f(random):
                return random.choice([1])
        """) == []

    def test_registry_module_is_exempt(self):
        source = """
            import numpy as np
            rng = np.random.default_rng(0)
        """
        assert run(source, path="src/repro/sim/rng.py") == []
        assert rule_names(run(source)) == ["no-ambient-rng"]


# -- no-wall-clock ------------------------------------------------------------

class TestWallClock:
    def test_fires_on_time_module(self):
        findings = run("""
            import time
            t0 = time.time()
            t1 = time.monotonic()
            t2 = time.perf_counter()
        """)
        assert rule_names(findings) == ["no-wall-clock"] * 3

    def test_fires_on_from_imports(self):
        findings = run("""
            from time import monotonic
            from datetime import datetime
            a = monotonic()
            b = datetime.now()
        """)
        assert rule_names(findings) == ["no-wall-clock"] * 2

    def test_quiet_on_simulated_time(self):
        assert run("""
            def fire(loop):
                return loop.now() + 3.0
        """) == []

    def test_perf_harness_is_exempt(self):
        assert run("""
            import time
            t0 = time.perf_counter()
        """, path="src/repro/tools/perf.py") == []


# -- no-unordered-iteration ---------------------------------------------------

SIM_PATH = "src/repro/sim/example.py"


class TestUnorderedIteration:
    def test_fires_on_set_literal_iteration(self):
        findings = run("""
            for x in {1, 2, 3}:
                print(x)
        """, path=SIM_PATH)
        assert rule_names(findings) == ["no-unordered-iteration"]

    def test_fires_on_tracked_set_name(self):
        findings = run("""
            def f(items):
                seen = set(items)
                return [x + 1 for x in seen]
        """, path=SIM_PATH)
        assert rule_names(findings) == ["no-unordered-iteration"]

    def test_fires_on_self_attr_set(self):
        findings = run("""
            class Plane:
                def __init__(self):
                    self._dropped = set()

                def drain(self):
                    for d in self._dropped:
                        d.close()
        """, path=SIM_PATH)
        assert rule_names(findings) == ["no-unordered-iteration"]

    def test_fires_on_list_over_set_and_set_pop(self):
        findings = run("""
            def f():
                s = {1, 2}
                order = list(s)
                first = s.pop()
                return order, first
        """, path=SIM_PATH)
        assert rule_names(findings) == ["no-unordered-iteration"] * 2

    def test_fires_on_set_unpacking(self):
        findings = run("""
            a, b = {1, 2}
        """, path=SIM_PATH)
        assert rule_names(findings) == ["no-unordered-iteration"]

    def test_fires_on_dict_mutated_under_iteration(self):
        findings = run("""
            def f(d):
                for k in d:
                    if k < 0:
                        d.pop(k)
        """, path=SIM_PATH)
        assert rule_names(findings) == ["no-unordered-iteration"]
        assert "mutating" in findings[0].message

    def test_quiet_on_sorted_iteration(self):
        assert run("""
            def f():
                s = {3, 1, 2}
                for x in sorted(s):
                    print(x)
                return [y for y in sorted(s)]
        """, path=SIM_PATH) == []

    def test_quiet_on_membership_and_len(self):
        assert run("""
            def f(s: set[int]) -> bool:
                return 3 in s and len(s) > 2
        """, path=SIM_PATH) == []

    def test_quiet_on_plain_dict_iteration(self):
        assert run("""
            def f(d):
                out = []
                for k, v in d.items():
                    out.append((k, v))
                return out
        """, path=SIM_PATH) == []

    def test_quiet_outside_event_ordering_trees(self):
        # nn/ math is order-free: the rule is scoped to sim/actors/system/device.
        assert run("""
            for x in {1, 2, 3}:
                print(x)
        """, path="src/repro/nn/example.py") == []


# -- snapshot-unsafe-state ----------------------------------------------------

ACTOR_PATH = "src/repro/actors/example.py"


class TestSnapshotUnsafeState:
    def test_fires_on_lambda_actor_state(self):
        findings = run("""
            class Coordinator:
                def __init__(self):
                    self.guard = lambda: True
        """, path=ACTOR_PATH)
        assert rule_names(findings) == ["snapshot-unsafe-state"]
        assert "snapshot" in findings[0].message

    def test_fires_on_local_function_object(self):
        findings = run("""
            class Fleet:
                def arm(self):
                    def check():
                        return True
                    self.check = check
        """, path=ACTOR_PATH)
        assert rule_names(findings) == ["snapshot-unsafe-state"]

    def test_fires_on_generator_object_and_dict_slot(self):
        findings = run("""
            class Plane:
                def __init__(self, xs):
                    self.stream = (x for x in xs)
                    self.handlers = {}
                    self.handlers["f"] = lambda m: m
        """, path="src/repro/sim/example.py")
        assert rule_names(findings) == ["snapshot-unsafe-state"] * 2

    def test_fires_on_local_class_instance(self):
        findings = run("""
            class Fleet:
                def build(self):
                    class Runtime:
                        pass
                    self.runtime = Runtime()
        """, path=ACTOR_PATH)
        assert rule_names(findings) == ["snapshot-unsafe-state"]

    def test_fires_on_lambda_default_factory_anywhere(self):
        findings = run("""
            from dataclasses import dataclass, field

            @dataclass
            class Config:
                job: object = field(default_factory=lambda: object())
        """, path="src/repro/core/example.py")
        assert rule_names(findings) == ["snapshot-unsafe-state"]
        assert "module-level function" in findings[0].message

    def test_quiet_on_bound_method_and_module_function(self):
        assert run("""
            import functools

            def default_job():
                return 3

            class Coordinator:
                def __init__(self):
                    self.guard = self._check
                    self.factory = default_job
                    self.partial = functools.partial(default_job)

                def _check(self):
                    return True
        """, path=ACTOR_PATH) == []

    def test_quiet_on_calling_local_helper(self):
        # Calling a local function stores its (picklable) return value.
        assert run("""
            class Plane:
                def grow(self, arr):
                    def extend(a):
                        return a + a
                    self.rows = extend(arr)
        """, path="src/repro/sim/example.py") == []

    def test_module_level_default_factory_is_quiet(self):
        assert run("""
            from dataclasses import dataclass, field

            def default_job():
                return object()

            @dataclass
            class Config:
                job: object = field(default_factory=default_job)
        """, path="src/repro/core/example.py") == []


# -- inplace-op-discipline ----------------------------------------------------

NN_PATH = "src/repro/nn/example.py"


class TestInplaceDiscipline:
    def test_fires_on_allocator_in_inplace_op(self):
        findings = run("""
            import numpy as np

            def step_(w, g):
                scratch = np.zeros(w.size)
                np.multiply(g, 0.1, out=scratch)
                np.subtract(w, scratch, out=w)
                return w
        """)
        assert rule_names(findings) == ["inplace-op-discipline"]
        assert "np.zeros" in findings[0].message

    def test_fires_on_missing_out(self):
        findings = run("""
            import numpy as np

            def scale_(w, f):
                w2 = np.multiply(w, f)
                return w2
        """)
        assert rule_names(findings) == ["inplace-op-discipline"]
        assert "out=" in findings[0].message

    def test_fires_on_copy_method(self):
        findings = run("""
            def fold_(acc, v):
                acc.pending = v.copy()
        """)
        assert rule_names(findings) == ["inplace-op-discipline"]

    def test_quiet_with_out_and_outside_inplace_ops(self):
        assert run("""
            import numpy as np

            def step_(w, g, scratch):
                np.multiply(g, 0.1, out=scratch)
                np.subtract(w, scratch, out=w)
                return w

            def snapshot(w):
                # Allocation is fine outside *_ ops.
                return np.array(w)

            def __make__():
                return np.zeros(3)
        """) == []

    def test_fires_on_hot_path_to_vector_without_out(self):
        findings = run("""
            def report(delta):
                return delta.to_vector()
        """, path=NN_PATH)
        assert rule_names(findings) == ["inplace-op-discipline"]
        assert "to_vector" in findings[0].message

    def test_quiet_on_to_vector_with_out_or_cold_path(self):
        source = """
            def report(delta, buf):
                return delta.to_vector(out=buf)
        """
        assert run(source, path=NN_PATH) == []
        # Cold paths may take the fresh-copy form.
        assert run("""
            def report(delta):
                return delta.to_vector()
        """, path="src/repro/system/example.py") == []

    def test_secagg_is_a_hot_path(self):
        """The vectorized SecAgg plane is covered by both clauses: the
        directory-scoped to_vector policy and the global *_ policy on
        its stacked mask/commit kernels."""
        findings = run("""
            def commit(delta):
                return delta.to_vector()
        """, path="src/repro/secagg/vectorized.py")
        assert rule_names(findings) == ["inplace-op-discipline"]
        findings = run("""
            import numpy as np

            def _apply_masks_(masked, rows):
                extra = np.zeros_like(masked)
                masked += rows + extra
        """, path="src/repro/secagg/vectorized.py")
        assert rule_names(findings) == ["inplace-op-discipline"]
        assert "zeros_like" in findings[0].message
        assert run("""
            def _apply_masks_(masked, rows):
                masked += rows
        """, path="src/repro/secagg/vectorized.py") == []

    BIGMOD_PATH = "src/repro/secagg/bigmod.py"

    def test_fires_on_object_dtype_in_bigmod_kernel(self):
        findings = run("""
            import numpy as np

            def _mont_reduce(limbs):
                return np.array(limbs, dtype=object).sum()
        """, path=self.BIGMOD_PATH)
        assert rule_names(findings) == ["inplace-op-discipline"]
        assert "object" in findings[0].message

    def test_fires_on_astype_object_in_bigmod_kernel(self):
        findings = run("""
            def powmod_batch(limbs):
                return limbs.astype(object)
        """, path=self.BIGMOD_PATH)
        assert rule_names(findings) == ["inplace-op-discipline"]
        assert "boundary" in findings[0].message

    def test_quiet_on_object_dtype_in_bigmod_boundary(self):
        # The int<->limb boundary helpers are the declared escape hatch,
        # and the clause is scoped to bigmod.py only.
        source = """
            import numpy as np

            def _to_limbs(values):
                return np.array(values, dtype=object)

            def _from_limbs(limbs):
                return limbs.astype(object).tolist()
        """
        assert run(source, path=self.BIGMOD_PATH) == []
        assert run("""
            import numpy as np
            table = np.array([1, 2], dtype=object)
        """, path="src/repro/secagg/vectorized.py") == []


# -- report-vector-immutability -----------------------------------------------

AGG_PATH = "src/repro/actors/aggregator.py"


class TestReportImmutability:
    def test_fires_on_augmented_assign(self):
        findings = run("""
            def fold(result):
                v = result.delta_vector
                v += 1.0
        """)
        assert rule_names(findings) == ["report-vector-immutability"]

    def test_fires_on_direct_attribute_mutation(self):
        findings = run("""
            def clamp(report):
                report.delta_vector[0] = 0.0
                report.delta_vector *= 0.5
        """)
        assert rule_names(findings) == ["report-vector-immutability"] * 2

    def test_fires_on_inplace_methods_and_out(self):
        findings = run("""
            import numpy as np

            def scrub(result, noise):
                v = result.delta_vector
                v.fill(0.0)
                np.add(v, noise, out=v)
                np.copyto(v, noise)
        """)
        # fill, out=, copyto — three distinct writes.
        assert rule_names(findings) == ["report-vector-immutability"] * 3

    def test_fires_on_pending_reports_in_aggregator(self):
        findings = run("""
            class Aggregator:
                def flush(self):
                    for device_id in list(self._pending):
                        vec, weight = self._pending[device_id]
                        vec *= weight
        """, path=AGG_PATH)
        assert rule_names(findings) == ["report-vector-immutability"]

    def test_quiet_on_reads_and_fresh_copies(self):
        assert run("""
            import numpy as np

            def fold(result, acc):
                v = result.delta_vector
                acc += v          # writes acc, reads v
                total = v.sum()
                w = v.copy()
                w += 1.0          # fresh storage — legal
                return total, w
        """) == []

    def test_quiet_on_pending_outside_aggregators(self):
        # `pending` tracking is scoped to aggregator modules.
        assert run("""
            def tick(self):
                window = self.pending_window
                window += 1.0
        """, path="src/repro/sim/example.py") == []
