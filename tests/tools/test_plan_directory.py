"""PlanDirectory: per-task versioned plan serving."""

import pytest

from repro.core.config import ClientTrainingConfig, SecAggConfig, TaskKind
from repro.core.plan import generate_plan
from repro.tools.versioning import PlanDirectory, PlanRepository, default_transforms


def make_repo(task_id, kind=TaskKind.TRAINING):
    plan = generate_plan(
        task_id=task_id,
        kind=kind,
        client_config=ClientTrainingConfig(),
        secagg=SecAggConfig(),
        model_nbytes=100,
    )
    return PlanRepository.build(plan, [7, 10], default_transforms())


def test_routes_by_task_id():
    directory = PlanDirectory()
    directory.add("train", make_repo("train"))
    directory.add("eval", make_repo("eval", TaskKind.EVALUATION))
    train_plan = directory.plan_for_task("train", 10)
    eval_plan = directory.plan_for_task("eval", 10)
    assert train_plan.task_id == "train"
    assert eval_plan.task_id == "eval"
    assert eval_plan.device.kind is TaskKind.EVALUATION
    assert directory.task_ids() == ["eval", "train"]


def test_unknown_task_returns_none():
    directory = PlanDirectory()
    directory.add("train", make_repo("train"))
    assert directory.plan_for_task("nope", 10) is None


def test_versioned_serving_per_task():
    directory = PlanDirectory()
    directory.add("train", make_repo("train"))
    lowered = directory.plan_for_task("train", 7)
    assert lowered is not None
    assert lowered.version_tag == "runtime-7"


def test_any_task_servable_gate():
    directory = PlanDirectory()
    directory.add("train", make_repo("train"))
    assert directory.plan_for_runtime(10) is not None
    assert directory.plan_for_runtime(7) is not None


def test_duplicate_task_rejected():
    directory = PlanDirectory()
    directory.add("t", make_repo("t"))
    with pytest.raises(ValueError, match="already"):
        directory.add("t", make_repo("t"))


def test_repository_itself_satisfies_the_directory_interface():
    repo = make_repo("solo")
    assert repo.plan_for_task("anything", 10) is repo.plan_for_runtime(10)
