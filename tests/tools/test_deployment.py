"""Deployment gates: all four acceptance conditions (Sec. 7.3)."""

import numpy as np
import pytest

from repro.core.datasets import ClientDataset
from repro.nn.models import LogisticRegression
from repro.tools.deployment import DeploymentGate, PlanEmulator, measure_resources
from repro.tools.modeling import FLTaskBuilder, TestPredicate, loss_is_finite


def make_builder(rng, reviewed=True, predicate=None):
    x = rng.normal(size=(60, 4))
    b = (
        FLTaskBuilder("pop/train", "pop")
        .with_model(LogisticRegression(input_dim=4, n_classes=3), rng)
        .with_proxy_data(ClientDataset("proxy", x, rng.integers(0, 3, size=60)))
        .with_test(predicate or loss_is_finite())
    )
    if reviewed:
        b.mark_reviewed()
    return b


def build_plan(builder):
    # Bypass build()'s own validation to reach the gate with a plan.
    from repro.core.plan import generate_plan
    from repro.core.config import SecAggConfig, TaskKind
    from repro.nn.serialization import checkpoint_nbytes

    return generate_plan(
        task_id=builder.task_id,
        kind=TaskKind.TRAINING,
        client_config=builder.client_config,
        secagg=SecAggConfig(),
        model_nbytes=checkpoint_nbytes(builder.initial_params),
    )


def test_all_gates_pass(rng):
    builder = make_builder(rng)
    gate = DeploymentGate(fleet_runtime_versions=[7, 8, 9, 10])
    report = gate.evaluate(builder, build_plan(builder), rng)
    assert report.accepted, report.violations
    assert report.resources is not None
    assert set(report.versioned_plans) == {7, 8, 9, 10}


def test_unreviewed_code_rejected(rng):
    builder = make_builder(rng, reviewed=False)
    gate = DeploymentGate(fleet_runtime_versions=[10])
    report = gate.evaluate(builder, build_plan(builder), rng)
    assert not report.accepted
    assert any("peer reviewed" in v for v in report.violations)


def test_failing_task_test_rejected(rng):
    builder = make_builder(
        rng, predicate=TestPredicate("nope", lambda m, p, d: False)
    )
    gate = DeploymentGate(fleet_runtime_versions=[10])
    report = gate.evaluate(builder, build_plan(builder), rng)
    assert not report.accepted
    assert any("task test failed" in v for v in report.violations)


def test_resource_overrun_rejected(rng):
    builder = make_builder(rng)
    gate = DeploymentGate(
        fleet_runtime_versions=[10], max_memory_mb=1e-6
    )
    report = gate.evaluate(builder, build_plan(builder), rng)
    assert not report.accepted
    assert any("peak memory" in v for v in report.violations)


def test_update_size_limit(rng):
    builder = make_builder(rng)
    gate = DeploymentGate(fleet_runtime_versions=[10], max_update_nbytes=8)
    report = gate.evaluate(builder, build_plan(builder), rng)
    assert not report.accepted
    assert any("update size" in v for v in report.violations)


def test_versioned_plans_pass_same_release_tests(rng):
    """'Versioned and unversioned plans must pass the same release tests.'"""
    builder = make_builder(rng)
    plan = build_plan(builder)
    report = DeploymentGate(fleet_runtime_versions=[7, 10]).evaluate(
        builder, plan, rng
    )
    assert report.accepted
    v7 = report.versioned_plans[7]
    assert v7.version_tag == "runtime-7"
    assert PlanEmulator(7).run_task_tests(builder, v7) == []


def test_emulator_refuses_too_new_plan(rng):
    builder = make_builder(rng)
    plan = build_plan(builder)
    refusals = PlanEmulator(8).check_ops(plan)
    assert refusals  # fused op needs runtime 9
    failures = PlanEmulator(8).run_task_tests(builder, plan)
    assert any("refuses" in f for f in failures)


def test_measure_resources_reports_positive_numbers(rng):
    builder = make_builder(rng)
    estimate = measure_resources(
        builder.model, builder.initial_params, build_plan(builder),
        builder.proxy_data, rng,
    )
    assert estimate.peak_memory_mb > 0
    assert estimate.train_seconds_per_100_examples > 0
    assert estimate.update_nbytes == builder.initial_params.num_parameters * 8


def test_gate_builds_servable_repository(rng):
    builder = make_builder(rng)
    plan = build_plan(builder)
    gate = DeploymentGate(fleet_runtime_versions=[7, 8, 9, 10])
    assert gate.evaluate(builder, plan, rng).accepted
    repo = gate.build_repository(plan)
    for version in (7, 8, 9, 10):
        assert repo.plan_for_runtime(version) is not None
