"""Simulation workflows: proxy pre-training and simulated task runs."""

import numpy as np

from repro.core.config import ClientTrainingConfig, RoundConfig, TaskConfig
from repro.core.datasets import ClientDataset
from repro.nn.models import LogisticRegression
from repro.tools.simulation import pretrain_on_proxy, run_simulated_task


def make_proxy_clients(rng, n_clients=5):
    w = rng.normal(size=(4, 3))
    clients = []
    for i in range(n_clients):
        x = rng.normal(size=(50, 4))
        clients.append(ClientDataset(f"p{i}", x, (x @ w).argmax(axis=1)))
    return clients


def test_pretraining_reduces_proxy_loss(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    clients = make_proxy_clients(rng)
    params = model.init(rng)
    before = np.mean([model.loss(params, c.x, c.y) for c in clients])
    tuned = pretrain_on_proxy(
        model, params, clients, epochs=5, batch_size=16, learning_rate=0.3, rng=rng
    )
    after = np.mean([model.loss(tuned, c.x, c.y) for c in clients])
    assert after < 0.6 * before


def test_simulated_task_uses_task_hyperparameters(rng):
    model = LogisticRegression(input_dim=4, n_classes=3)
    clients = make_proxy_clients(rng)
    task = TaskConfig(
        task_id="sim/t",
        population_name="sim",
        round_config=RoundConfig(target_participants=3),
        client_config=ClientTrainingConfig(epochs=2, batch_size=8, learning_rate=0.3),
    )
    params, history = run_simulated_task(model, task, clients, 20, rng)
    assert len(history) == 20
    assert all(h.num_clients == 3 for h in history)
    assert history[-1].mean_client_loss < history[0].mean_client_loss
