"""Framework semantics (suppressions, path policies, CLI, JSON) and the
tier-1 gate: the shipped tree has zero findings."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.tools.lint import (
    RULES,
    UNKNOWN_SUPPRESSION,
    Finding,
    find_root,
    lint_paths,
    lint_source,
)
from repro.tools.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]

AMBIENT = textwrap.dedent("""
    import numpy as np
    a = np.random.rand(3)
""")


def run(source: str, path: str = "src/repro/system/example.py", **kwargs):
    return lint_source(textwrap.dedent(source), path, **kwargs)


# -- the tree is clean (and stays clean) --------------------------------------

class TestShippedTree:
    def test_src_has_zero_findings(self):
        findings, checked = lint_paths(
            [str(REPO_ROOT / "src")], root=str(REPO_ROOT)
        )
        assert checked > 50
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_benchmarks_and_examples_have_zero_findings(self):
        findings, checked = lint_paths(
            [str(REPO_ROOT / "benchmarks"), str(REPO_ROOT / "examples")],
            root=str(REPO_ROOT),
        )
        assert checked > 10
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_reintroducing_a_pr5_bug_fails(self, tmp_path):
        """A lambda on actor state — the exact bug class PR 5 fixed by
        hand — must fail the CLI (and with it the CI lint job)."""
        (tmp_path / "setup.py").write_text("")  # repo-root marker
        bad = tmp_path / "src" / "repro" / "actors" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent("""
            class Coordinator:
                def __init__(self):
                    self.on_round_done = lambda report: report
        """))
        code = lint_main([str(tmp_path / "src"), "--format", "json",
                          "--out", str(tmp_path / "report.json")])
        assert code == 1
        report = json.loads((tmp_path / "report.json").read_text())
        assert [f["rule"] for f in report["findings"]] == [
            "snapshot-unsafe-state"
        ]


# -- suppression semantics ----------------------------------------------------

class TestSuppressions:
    def test_allow_silences_exactly_that_rule_on_that_line(self):
        clean = run("""
            import numpy as np
            a = np.random.rand(3)  # repro-lint: allow(no-ambient-rng)
        """)
        assert clean == []

    def test_other_lines_still_fire(self):
        findings = run("""
            import numpy as np
            a = np.random.rand(3)  # repro-lint: allow(no-ambient-rng)
            b = np.random.rand(3)
        """)
        assert [f.rule for f in findings] == ["no-ambient-rng"]
        assert findings[0].line == 4

    def test_wrong_rule_does_not_silence(self):
        findings = run("""
            import numpy as np
            a = np.random.rand(3)  # repro-lint: allow(no-wall-clock)
        """)
        assert [f.rule for f in findings] == ["no-ambient-rng"]

    def test_multiple_rules_in_one_suppression(self):
        clean = run("""
            import time
            import numpy as np
            x = np.random.rand(int(time.time()))  # repro-lint: allow(no-ambient-rng, no-wall-clock)
        """)
        assert clean == []

    def test_unknown_rule_name_is_itself_a_finding(self):
        findings = run("""
            x = 1  # repro-lint: allow(no-such-rule)
        """)
        assert [f.rule for f in findings] == [UNKNOWN_SUPPRESSION]
        assert "no-such-rule" in findings[0].message

    def test_unknown_rule_fires_even_where_policies_disable_rules(self):
        # tests/ has every contract rule disabled, but a typo'd
        # suppression is still reported — it would silently rot there.
        findings = run("""
            x = 1  # repro-lint: allow(not-a-rule)
        """, path="tests/test_example.py")
        assert [f.rule for f in findings] == [UNKNOWN_SUPPRESSION]

    def test_suppression_in_string_literal_is_ignored(self):
        findings = run("""
            import numpy as np
            doc = "# repro-lint: allow(no-ambient-rng)"
            a = np.random.rand(3)
        """)
        assert [f.rule for f in findings] == ["no-ambient-rng"]


# -- path policies ------------------------------------------------------------

class TestPathPolicies:
    def test_tests_tree_is_fully_relaxed(self):
        assert run(AMBIENT, path="tests/sim/test_example.py") == []

    def test_benchmarks_keep_snapshot_rule(self):
        findings = run("""
            from dataclasses import dataclass, field

            @dataclass
            class BenchConfig:
                fleet: object = field(default_factory=lambda: object())
        """, path="benchmarks/perf/example.py")
        assert [f.rule for f in findings] == ["snapshot-unsafe-state"]

    def test_rule_selection_narrows(self):
        findings = run("""
            import time
            import numpy as np
            a = np.random.rand(3)
            t = time.time()
        """, rules={"no-wall-clock"})
        assert [f.rule for f in findings] == ["no-wall-clock"]


# -- findings / JSON round-trip -----------------------------------------------

class TestJsonRoundTrip:
    def test_finding_dict_round_trip(self):
        findings = run(AMBIENT)
        assert len(findings) == 1
        assert Finding.from_dict(findings[0].to_dict()) == findings[0]

    def test_cli_json_round_trips_path_line_rule_message(self, tmp_path, capsys):
        (tmp_path / "setup.py").write_text("")
        src = tmp_path / "src" / "repro" / "system" / "example.py"
        src.parent.mkdir(parents=True)
        src.write_text(AMBIENT)
        code = lint_main([str(tmp_path / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["files_checked"] == 1
        expected = lint_source(AMBIENT, "src/repro/system/example.py")
        assert [Finding.from_dict(f) for f in payload["findings"]] == expected
        # Paths are root-relative posix, stable across machines.
        assert payload["findings"][0]["path"] == "src/repro/system/example.py"

    def test_parse_error_is_reported_not_raised(self):
        findings = run("def broken(:\n", path="src/repro/system/example.py")
        assert [f.rule for f in findings] == ["parse-error"]


# -- CLI ----------------------------------------------------------------------

class TestCli:
    def _tree(self, tmp_path, source=AMBIENT):
        (tmp_path / "setup.py").write_text("")
        src = tmp_path / "src" / "repro" / "system" / "example.py"
        src.parent.mkdir(parents=True)
        src.write_text(source)
        return src

    def test_exit_codes(self, tmp_path, capsys):
        self._tree(tmp_path)
        assert lint_main([str(tmp_path / "src")]) == 1
        capsys.readouterr()
        clean = tmp_path / "src" / "repro" / "system" / "example.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(tmp_path / "src")]) == 0

    def test_unknown_rule_is_usage_error(self, capsys):
        assert lint_main(["--rule", "bogus", "src"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_rule_filter(self, tmp_path, capsys):
        self._tree(tmp_path)
        assert lint_main(
            [str(tmp_path / "src"), "--rule", "no-wall-clock"]
        ) == 0

    def test_list_rules_names_every_registered_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out
        assert UNKNOWN_SUPPRESSION in out

    def test_text_format_renders_location(self, tmp_path, capsys):
        self._tree(tmp_path)
        lint_main([str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert "src/repro/system/example.py:3:" in out
        assert "[no-ambient-rng]" in out


def test_find_root_locates_repo():
    assert find_root(str(REPO_ROOT / "src" / "repro")) == str(REPO_ROOT)
