"""N-gram baseline: learns bigram structure, beats chance."""

import numpy as np
import pytest

from repro.baselines.ngram import NGramLanguageModel
from repro.core.datasets import ClientDataset
from repro.data.keyboard import KeyboardCorpusConfig, build_keyboard_clients


def test_learns_deterministic_bigrams():
    # Token stream alternates 0 -> 1 -> 0 ...; contexts end at prev token.
    x = np.array([[0], [1], [0], [1]])
    y = np.array([1, 0, 1, 0])
    model = NGramLanguageModel(vocab_size=3, interpolation=1.0, add_k=0.01)
    model.fit([ClientDataset("c", x, y)])
    preds = model.predict(np.array([[0], [1]]))
    np.testing.assert_array_equal(preds, [1, 0])


def test_beats_chance_on_keyboard_corpus(rng):
    config = KeyboardCorpusConfig(
        vocab_size=60, num_users=30, sentences_per_user_mean=60.0
    )
    clients = build_keyboard_clients(config, rng)
    model = NGramLanguageModel(vocab_size=60).fit(clients)
    pooled = ClientDataset(
        "all",
        np.concatenate([c.x for c in clients]),
        np.concatenate([c.y for c in clients]),
    )
    recall = model.top_k_recall(pooled, k=1)
    assert recall > 3.0 / 60  # well above the 1.7% chance level


def test_top_k_recall_monotone_in_k(rng):
    config = KeyboardCorpusConfig(vocab_size=40, num_users=10)
    clients = build_keyboard_clients(config, rng)
    model = NGramLanguageModel(vocab_size=40).fit(clients)
    data = clients[0]
    r1 = model.top_k_recall(data, k=1)
    r3 = model.top_k_recall(data, k=3)
    r10 = model.top_k_recall(data, k=10)
    assert r1 <= r3 <= r10


def test_probs_normalized(rng):
    config = KeyboardCorpusConfig(vocab_size=30, num_users=5)
    clients = build_keyboard_clients(config, rng)
    model = NGramLanguageModel(vocab_size=30).fit(clients)
    probs = model.next_word_probs(np.arange(30))
    np.testing.assert_allclose(probs.sum(axis=1), 1.0)


def test_validation():
    with pytest.raises(ValueError):
        NGramLanguageModel(10, interpolation=1.5)
    with pytest.raises(ValueError):
        NGramLanguageModel(10, add_k=-1)
