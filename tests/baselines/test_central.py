"""Centralized baseline trainer."""

import numpy as np

from repro.baselines.central import CentralizedTrainer
from repro.core.datasets import ClientDataset
from repro.nn.models import LogisticRegression


def test_training_reduces_loss_and_counts_steps(rng):
    w = rng.normal(size=(4, 3))
    x = rng.normal(size=(300, 4))
    data = ClientDataset("pool", x, (x @ w).argmax(axis=1))
    trainer = CentralizedTrainer(
        LogisticRegression(input_dim=4, n_classes=3),
        learning_rate=0.3,
        batch_size=30,
    )
    params = trainer.fit(data, epochs=5, rng=rng)
    assert trainer.sgd_steps == 5 * 10
    assert trainer.history[-1] < trainer.history[0]
    acc = (
        trainer.model.logits(params, x).argmax(axis=1) == data.y
    ).mean()
    assert acc > 0.8


def test_accepts_client_list(rng):
    w = rng.normal(size=(3, 2))
    clients = []
    for i in range(3):
        x = rng.normal(size=(40, 3))
        clients.append(ClientDataset(f"c{i}", x, (x @ w).argmax(axis=1)))
    trainer = CentralizedTrainer(LogisticRegression(3, 2))
    trainer.fit(clients, epochs=1, rng=rng)
    assert trainer.sgd_steps == int(np.ceil(120 / trainer.batch_size))
