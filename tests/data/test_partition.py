"""Federated partitioners."""

import numpy as np
import pytest

from repro.data.partition import dirichlet_partition, iid_partition


def pooled(rng, n=600, d=4, c=5):
    return rng.normal(size=(n, d)), rng.integers(0, c, size=n)


def test_iid_covers_everything(rng):
    x, y = pooled(rng)
    clients = iid_partition(x, y, 10, rng)
    assert len(clients) == 10
    assert sum(c.num_examples for c in clients) == 600


def test_iid_validation(rng):
    x, y = pooled(rng, n=10)
    with pytest.raises(ValueError):
        iid_partition(x, y, 0, rng)
    with pytest.raises(ValueError):
        iid_partition(x, y, 11, rng)


def test_dirichlet_small_alpha_skews_labels(rng):
    x, y = pooled(rng, n=2000)
    skewed = dirichlet_partition(x, y, 10, alpha=0.1, rng=rng)
    balanced = dirichlet_partition(x, y, 10, alpha=100.0, rng=np.random.default_rng(0))

    def mean_label_entropy(clients):
        entropies = []
        for c in clients:
            h = np.bincount(c.y, minlength=5).astype(float)
            p = h / h.sum()
            p = p[p > 0]
            entropies.append(-(p * np.log(p)).sum())
        return np.mean(entropies)

    assert mean_label_entropy(skewed) < mean_label_entropy(balanced) - 0.3


def test_dirichlet_partition_is_complete(rng):
    x, y = pooled(rng, n=500)
    clients = dirichlet_partition(x, y, 8, alpha=1.0, rng=rng, min_examples=0)
    assert sum(c.num_examples for c in clients) == 500


def test_dirichlet_validation(rng):
    x, y = pooled(rng)
    with pytest.raises(ValueError):
        dirichlet_partition(x, y, 5, alpha=0.0, rng=rng)
