"""Synthetic keyboard corpus: shapes, non-IID structure, proxy drift."""

import numpy as np
import pytest

from repro.data.keyboard import (
    KeyboardCorpusConfig,
    build_keyboard_clients,
    build_proxy_corpus,
    evaluation_split,
)


def small_config(**kwargs):
    defaults = dict(vocab_size=50, num_users=20, context_length=4,
                    sentences_per_user_mean=20.0)
    defaults.update(kwargs)
    return KeyboardCorpusConfig(**defaults)


def test_client_shapes(rng):
    clients = build_keyboard_clients(small_config(), rng)
    assert len(clients) == 20
    for c in clients:
        assert c.x.ndim == 2
        assert c.x.shape[1] == 4
        assert c.x.max() < 50
        assert c.y.max() < 50
        assert c.num_examples > 0


def test_heterogeneous_client_sizes(rng):
    clients = build_keyboard_clients(small_config(), rng)
    sizes = [c.num_examples for c in clients]
    assert len(set(sizes)) > 1


def test_non_iid_user_distributions(rng):
    """Personalization + topic preferences should make users' token
    histograms diverge more than sampling noise alone."""
    personalized = build_keyboard_clients(
        small_config(personalization=0.4, topic_strength=0.4,
                     topic_concentration=0.3, num_users=10,
                     sentences_per_user_mean=100.0), rng
    )
    uniform = build_keyboard_clients(
        small_config(personalization=0.0, topic_strength=0.0,
                     topic_concentration=50.0, num_users=10,
                     sentences_per_user_mean=100.0), np.random.default_rng(0)
    )

    def mean_pairwise_tv(clients):
        hists = []
        for c in clients:
            h = np.bincount(c.y, minlength=50).astype(float)
            hists.append(h / h.sum())
        tvs = []
        for i in range(len(hists)):
            for j in range(i + 1, len(hists)):
                tvs.append(0.5 * np.abs(hists[i] - hists[j]).sum())
        return np.mean(tvs)

    assert mean_pairwise_tv(personalized) > 1.5 * mean_pairwise_tv(uniform)


def test_proxy_corpus_differs_from_field_distribution(rng):
    """Sec. 7.1: proxy data is 'drawn from a different distribution'."""
    config = small_config(num_users=10, sentences_per_user_mean=200.0)
    clients = build_keyboard_clients(config, rng)
    proxy = build_proxy_corpus(config, np.random.default_rng(1), num_tokens=20_000)
    field_hist = np.bincount(
        np.concatenate([c.y for c in clients]), minlength=50
    ).astype(float)
    proxy_hist = np.bincount(proxy.y, minlength=50).astype(float)
    field_hist /= field_hist.sum()
    proxy_hist /= proxy_hist.sum()
    tv = 0.5 * np.abs(field_hist - proxy_hist).sum()
    assert tv > 0.02


def test_contexts_predict_next_token(rng):
    """Windows must be consistent: x[i, 1:] == x[i+1, :-1] within a stream."""
    clients = build_keyboard_clients(small_config(num_users=1), rng)
    c = clients[0]
    np.testing.assert_array_equal(c.x[1, :-1], c.x[0, 1:])
    assert c.y[0] == c.x[1, -1]


def test_evaluation_split_disjoint_and_complete(rng):
    clients = build_keyboard_clients(small_config(), rng)
    total = sum(c.num_examples for c in clients)
    train, pooled_eval = evaluation_split(clients, 0.2, rng)
    remaining = sum(c.num_examples for c in train)
    assert remaining + pooled_eval.num_examples == total
    assert pooled_eval.num_examples >= len(clients)


def test_config_validation():
    with pytest.raises(ValueError):
        KeyboardCorpusConfig(vocab_size=5)
    with pytest.raises(ValueError):
        KeyboardCorpusConfig(personalization=1.0)
    with pytest.raises(ValueError):
        KeyboardCorpusConfig(context_length=0)
