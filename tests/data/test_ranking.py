"""On-device ranking workload."""

import numpy as np
import pytest

from repro.data.ranking import RankingConfig, build_ranking_clients


def test_shapes(rng):
    config = RankingConfig(num_users=10, feature_dim=6, num_candidates=4)
    clients, shared = build_ranking_clients(config, rng)
    assert len(clients) == 10
    assert shared.shape == (6,)
    for c in clients:
        assert c.x.shape[1] == 4 * 6
        assert c.y.min() >= 0
        assert c.y.max() < 4


def test_clicks_follow_preferences(rng):
    """The clicked item should score higher under the shared preference
    than a random candidate, on average."""
    config = RankingConfig(
        num_users=20, preference_noise=0.1, click_temperature=0.3,
        impressions_per_user_mean=100.0,
    )
    clients, shared = build_ranking_clients(config, rng)
    clicked_scores, other_scores = [], []
    for c in clients:
        feats = c.x.reshape(c.num_examples, config.num_candidates, config.feature_dim)
        scores = feats @ shared
        clicked_scores.extend(scores[np.arange(len(c.y)), c.y])
        other_scores.extend(scores[:, 0])
    assert np.mean(clicked_scores) > np.mean(other_scores) + 0.3


def test_config_validation():
    with pytest.raises(ValueError):
        RankingConfig(num_candidates=1)
    with pytest.raises(ValueError):
        RankingConfig(feature_dim=0)
