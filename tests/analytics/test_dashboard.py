"""Dashboard series and bucketing."""

import numpy as np
import pytest

from repro.analytics.dashboard import Dashboard, TimeSeries


def test_record_and_read():
    series = TimeSeries("x")
    series.record(1.0, 10.0)
    series.record(2.0, 20.0)
    t, v = series.as_arrays()
    np.testing.assert_array_equal(t, [1.0, 2.0])
    np.testing.assert_array_equal(v, [10.0, 20.0])


def test_non_monotonic_rejected():
    series = TimeSeries("x")
    series.record(5.0, 1.0)
    with pytest.raises(ValueError, match="non-monotonic"):
        series.record(4.0, 1.0)


@pytest.mark.parametrize(
    "reducer,expected",
    [("mean", [15.0, 40.0]), ("sum", [30.0, 40.0]), ("max", [20.0, 40.0]),
     ("count", [2.0, 1.0])],
)
def test_bucketed_reducers(reducer, expected):
    series = TimeSeries("x")
    series.record(10.0, 10.0)
    series.record(50.0, 20.0)
    series.record(70.0, 40.0)
    _, values = series.bucketed(60.0, reducer=reducer)
    np.testing.assert_array_equal(values, expected)


def test_bucketed_empty():
    t, v = TimeSeries("x").bucketed(60.0)
    assert t.size == 0


def test_unknown_reducer():
    series = TimeSeries("x")
    series.record(1.0, 1.0)
    with pytest.raises(ValueError):
        series.bucketed(60.0, reducer="median")


def test_dashboard_series_are_singletons():
    dash = Dashboard()
    dash.record("a", 1.0, 5.0)
    assert dash.series("a") is dash.series("a")
    assert len(dash.series("a")) == 1
    assert dash.series_names() == ["a"]


def test_dashboard_counters():
    dash = Dashboard()
    dash.increment("rounds")
    dash.increment("rounds", 2.0)
    assert dash.counter("rounds") == 3.0
    assert dash.counters() == {"rounds": 3.0}
