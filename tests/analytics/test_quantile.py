"""P² sketch accuracy and streaming moments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.quantile import MetricSummary, P2Quantile, StreamingMoments


def test_p2_median_of_uniform(rng):
    sketch = P2Quantile(0.5)
    data = rng.uniform(0, 100, size=5000)
    for v in data:
        sketch.update(v)
    assert sketch.value() == pytest.approx(np.quantile(data, 0.5), abs=3.0)


@pytest.mark.parametrize("q", [0.25, 0.5, 0.75, 0.95])
def test_p2_tracks_normal_quantiles(q, rng):
    sketch = P2Quantile(q)
    data = rng.normal(50, 10, size=8000)
    for v in data:
        sketch.update(v)
    true = np.quantile(data, q)
    assert abs(sketch.value() - true) < 1.0


def test_p2_small_sample_exactish():
    sketch = P2Quantile(0.5)
    for v in [5.0, 1.0, 3.0]:
        sketch.update(v)
    assert sketch.value() == 3.0


def test_p2_empty_raises():
    with pytest.raises(ValueError):
        P2Quantile(0.5).value()


def test_p2_invalid_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


@given(st.lists(st.floats(-1e4, 1e4), min_size=6, max_size=200))
@settings(max_examples=40, deadline=None)
def test_p2_value_within_observed_range(values):
    sketch = P2Quantile(0.5)
    for v in values:
        sketch.update(v)
    assert min(values) <= sketch.value() <= max(values)


def test_moments_match_numpy(rng):
    data = rng.normal(10, 3, size=1000)
    moments = StreamingMoments()
    for v in data:
        moments.update(v)
    assert moments.mean == pytest.approx(np.mean(data))
    assert moments.std == pytest.approx(np.std(data, ddof=1), rel=1e-9)
    assert moments.min == data.min()
    assert moments.max == data.max()


def test_moments_empty_raises():
    with pytest.raises(ValueError):
        StreamingMoments().mean


def test_metric_summary_to_dict(rng):
    summary = MetricSummary.empty()
    for v in rng.uniform(0, 1, size=500):
        summary.update(v)
    d = summary.to_dict()
    assert d["count"] == 500
    assert 0 <= d["p25"] <= d["p50"] <= d["p75"] <= d["p95"] <= 1
    assert MetricSummary.empty().to_dict() == {"count": 0}
