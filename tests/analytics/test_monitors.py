"""Time-series monitors fire on substantial deviations (Sec. 5)."""

import pytest

from repro.analytics.dashboard import TimeSeries
from repro.analytics.monitors import DeviationMonitor, ThresholdMonitor


def series_of(values, name="drop_rate"):
    series = TimeSeries(name)
    for i, v in enumerate(values):
        series.record(float(i), v)
    return series


def test_threshold_upper_bound():
    monitor = ThresholdMonitor("dropout", upper=0.15)
    alerts = monitor.check(series_of([0.05, 0.08, 0.30, 0.07]))
    assert len(alerts) == 1
    assert alerts[0].time_s == 2.0
    assert "0.3" in alerts[0].message


def test_threshold_lower_bound():
    monitor = ThresholdMonitor("completion", lower=0.5)
    alerts = monitor.check(series_of([0.9, 0.4, 0.95]))
    assert len(alerts) == 1
    assert alerts[0].value == 0.4


def test_threshold_requires_a_bound():
    with pytest.raises(ValueError):
        ThresholdMonitor("x")


def test_deviation_monitor_flags_regression():
    """The paper's example: drop-out rates much higher than expected."""
    steady = [0.07, 0.08, 0.07, 0.09, 0.08, 0.07, 0.08, 0.09, 0.08, 0.07]
    spiked = steady + [0.40]
    monitor = DeviationMonitor("dropout-regression", window=10, z_threshold=4.0)
    assert monitor.check(series_of(steady)) == []
    alerts = monitor.check(series_of(spiked))
    assert len(alerts) == 1
    assert alerts[0].value == 0.40


def test_deviation_monitor_ignores_constant_series():
    monitor = DeviationMonitor("m", window=5)
    assert monitor.check(series_of([1.0] * 20)) == []


def test_deviation_window_validation():
    with pytest.raises(ValueError):
        DeviationMonitor("m", window=2)
