"""Materialized model metrics (Sec. 7.4)."""

from repro.analytics.metrics_store import ModelMetricsStore


def test_materialize_summarizes_device_reports():
    store = ModelMetricsStore()
    reports = [{"loss": 1.0, "n": 10}, {"loss": 3.0, "n": 30}, {"loss": 2.0, "n": 20}]
    record = store.materialize(
        "task", round_number=5, time_s=100.0, device_metrics=reports,
        fl_runtime="sim",
    )
    assert record.summaries["loss"].moments.mean == 2.0
    assert record.summaries["n"].moments.count == 3
    assert record.metadata["fl_runtime"] == "sim"


def test_rows_are_flat_and_annotated():
    store = ModelMetricsStore()
    store.materialize("task", 1, 10.0, [{"loss": 2.0}])
    store.materialize("task", 2, 20.0, [{"loss": 1.0}])
    rows = store.to_rows("task")
    assert len(rows) == 2
    assert rows[0]["task_name"] == "task"
    assert rows[0]["round_number"] == 1
    assert rows[1]["loss/mean"] == 1.0
    assert "loss/p50" in rows[0]


def test_histories_per_task():
    store = ModelMetricsStore()
    store.materialize("a", 1, 0.0, [])
    store.materialize("b", 1, 0.0, [])
    assert store.tasks() == ["a", "b"]
    assert len(store.history("a")) == 1
    assert store.history("zzz") == []
