"""Session shape strings and the Table 1 rendering."""

from collections import Counter

from repro.analytics.events import DeviceEvent, EventLog
from repro.analytics.session_shapes import (
    SESSION_LEGEND,
    classify_shape,
    format_table,
    session_shape,
    shape_distribution,
)


def make_session(log, device, round_id, events, t0=0.0):
    for i, event in enumerate(events):
        log.log(t0 + i, device, round_id, event)


def test_shape_string_ordering():
    log = EventLog()
    # Log out of order; shape must respect timestamps.
    log.log(3.0, 1, 1, DeviceEvent.TRAIN_STARTED)
    log.log(1.0, 1, 1, DeviceEvent.CHECKIN)
    log.log(2.0, 1, 1, DeviceEvent.DOWNLOADED_PLAN)
    assert session_shape(log.session(1, 1)) == "-v["


def test_distribution_counts():
    log = EventLog()
    success = [
        DeviceEvent.CHECKIN,
        DeviceEvent.DOWNLOADED_PLAN,
        DeviceEvent.TRAIN_STARTED,
        DeviceEvent.TRAIN_COMPLETED,
        DeviceEvent.UPLOAD_STARTED,
        DeviceEvent.UPLOAD_COMPLETED,
    ]
    interrupted = [
        DeviceEvent.CHECKIN,
        DeviceEvent.DOWNLOADED_PLAN,
        DeviceEvent.TRAIN_STARTED,
        DeviceEvent.INTERRUPTED,
    ]
    make_session(log, 1, 1, success)
    make_session(log, 2, 1, success)
    make_session(log, 3, 1, interrupted)
    counts = shape_distribution(log)
    assert counts["-v[]+^"] == 2
    assert counts["-v[!"] == 1


def test_format_table_layout():
    table = format_table(Counter({"-v[]+^": 750, "-v[]+#": 220, "-v[!": 30}))
    lines = table.splitlines()
    assert "Session Shape" in lines[0]
    assert "-v[]+^" in lines[1]
    assert "75%" in lines[1]
    assert "22%" in lines[2]


def test_legend_covers_all_glyphs():
    for event in DeviceEvent:
        assert event.glyph in SESSION_LEGEND


def test_classification_examples_from_paper():
    """Sec. 5: '-v[]+*' is a network issue, '-v[*' is a model issue."""
    assert classify_shape("-v[]+*") == "network_issue"
    assert classify_shape("-v[*") == "model_issue"
    assert classify_shape("-v[]+^") == "success"
    assert classify_shape("-v[]+#") == "upload_rejected"
    assert classify_shape("-v[!") == "interrupted"
    assert classify_shape("-v") == "incomplete"
