"""Event log basics."""

from repro.analytics.events import DeviceEvent, EventLog


def test_glyphs_match_table_one_legend():
    assert DeviceEvent.CHECKIN.glyph == "-"
    assert DeviceEvent.DOWNLOADED_PLAN.glyph == "v"
    assert DeviceEvent.TRAIN_STARTED.glyph == "["
    assert DeviceEvent.TRAIN_COMPLETED.glyph == "]"
    assert DeviceEvent.UPLOAD_STARTED.glyph == "+"
    assert DeviceEvent.UPLOAD_COMPLETED.glyph == "^"
    assert DeviceEvent.UPLOAD_REJECTED.glyph == "#"
    assert DeviceEvent.INTERRUPTED.glyph == "!"
    assert DeviceEvent.ERROR.glyph == "*"


def test_log_and_session_lookup():
    log = EventLog()
    log.log(1.0, device_id=5, round_id=2, event=DeviceEvent.CHECKIN)
    log.log(2.0, device_id=5, round_id=2, event=DeviceEvent.DOWNLOADED_PLAN)
    log.log(1.5, device_id=6, round_id=2, event=DeviceEvent.CHECKIN)
    assert len(log) == 3
    session = log.session(5, 2)
    assert [r.event for r in session] == [
        DeviceEvent.CHECKIN,
        DeviceEvent.DOWNLOADED_PLAN,
    ]
    assert log.session(99, 1) == []


def test_sessions_ordered_by_first_event():
    log = EventLog()
    log.log(5.0, 1, 1, DeviceEvent.CHECKIN)
    log.log(2.0, 2, 1, DeviceEvent.CHECKIN)
    keys = [key for key, _ in log.sessions()]
    assert keys == [(2, 1), (1, 1)]


def test_window_query_and_count():
    log = EventLog()
    for t in (1.0, 5.0, 9.0):
        log.log(t, 1, 1, DeviceEvent.ERROR)
    assert len(log.events_in_window(0.0, 6.0)) == 2
    assert log.count(DeviceEvent.ERROR) == 3
    assert log.count(DeviceEvent.CHECKIN) == 0


def test_attrs_preserved():
    log = EventLog()
    log.log(1.0, 1, 1, DeviceEvent.ERROR, reason="oom")
    assert log.records()[0].attrs["reason"] == "oom"
