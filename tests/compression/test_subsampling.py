"""Subsampling codec: unbiasedness and wire size."""

import numpy as np
import pytest

from repro.compression.subsampling import SubsamplingCodec


def test_decode_restores_length(rng):
    codec = SubsamplingCodec(fraction=0.3)
    x = rng.normal(size=200)
    decoded, nbytes = codec.roundtrip(x, rng)
    assert decoded.shape == x.shape
    assert nbytes < 200 * 8


def test_surviving_coordinates_scaled(rng):
    codec = SubsamplingCodec(fraction=0.5)
    x = np.ones(1000)
    decoded, _ = codec.roundtrip(x, rng)
    kept = decoded[decoded != 0]
    np.testing.assert_allclose(kept, 2.0)  # 1 / 0.5


def test_unbiasedness(rng):
    codec = SubsamplingCodec(fraction=0.25)
    x = rng.normal(size=50)
    trials = np.stack([codec.roundtrip(x, rng)[0] for _ in range(4000)])
    bias = np.abs(trials.mean(axis=0) - x)
    # Var per coord ~ x^2 (1-f)/f / trials; allow 6 sigma.
    sigma = np.abs(x) * np.sqrt((1 - 0.25) / 0.25 / 4000)
    assert (bias < 6 * sigma + 1e-3).all()


def test_fraction_one_is_lossless(rng):
    codec = SubsamplingCodec(fraction=1.0)
    x = rng.normal(size=64)
    decoded, _ = codec.roundtrip(x, rng)
    np.testing.assert_allclose(decoded, x)


def test_wire_size_tracks_fraction(rng):
    x = rng.normal(size=10_000)
    small = SubsamplingCodec(fraction=0.1).encode(x, rng)[1]
    large = SubsamplingCodec(fraction=0.9).encode(x, rng)[1]
    assert small < large


def test_fraction_validation():
    with pytest.raises(ValueError):
        SubsamplingCodec(fraction=0.0)
    with pytest.raises(ValueError):
        SubsamplingCodec(fraction=1.5)
