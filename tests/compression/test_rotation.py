"""Hadamard rotation: exact invertibility and range flattening."""

import numpy as np
import pytest

from repro.compression.codec import CodecPipeline
from repro.compression.quantization import QuantizationCodec
from repro.compression.rotation import RotationCodec, hadamard_transform


def test_hadamard_requires_power_of_two():
    with pytest.raises(ValueError):
        hadamard_transform(np.zeros(6))


def test_hadamard_involution(rng):
    x = rng.normal(size=16)
    # H(Hx) = n * x for the unnormalized transform.
    twice = hadamard_transform(hadamard_transform(x))
    np.testing.assert_allclose(twice, 16 * x, atol=1e-9)


def test_rotation_roundtrip_exact(rng):
    codec = RotationCodec(seed=5)
    for n in (1, 7, 16, 100):
        x = rng.normal(size=n)
        decoded, _ = codec.roundtrip(x, rng)
        np.testing.assert_allclose(decoded, x, atol=1e-9)


def test_rotation_preserves_norm(rng):
    codec = RotationCodec(seed=1)
    x = rng.normal(size=64)
    payload, _ = codec.encode(x, rng)
    assert np.linalg.norm(payload["rotated"]) == pytest.approx(np.linalg.norm(x))


def test_rotation_flattens_spiky_vectors(rng):
    """The reason to rotate: a one-hot vector's range shrinks a lot."""
    x = np.zeros(256)
    x[3] = 100.0
    payload, _ = RotationCodec(seed=2).encode(x, rng)
    rotated = payload["rotated"]
    assert rotated.max() - rotated.min() < (x.max() - x.min()) / 4


def test_rotate_then_quantize_beats_quantize_alone(rng):
    """Konečný et al.'s headline: rotation reduces quantization error on
    badly conditioned vectors."""
    x = np.zeros(512)
    x[::37] = 50.0
    x[1::53] = -1.0
    plain = QuantizationCodec(bits=4)
    rotated = CodecPipeline([RotationCodec(seed=3), QuantizationCodec(bits=4)])
    err_plain = np.abs(plain.roundtrip(x, np.random.default_rng(0))[0] - x).mean()
    err_rotated = np.abs(
        rotated.roundtrip(x, np.random.default_rng(0))[0] - x
    ).mean()
    assert err_rotated < err_plain
