"""Codec composition."""

import numpy as np
import pytest

from repro.compression.codec import CodecPipeline, IdentityCodec
from repro.compression.quantization import QuantizationCodec
from repro.compression.rotation import RotationCodec


def test_identity_codec(rng):
    x = rng.normal(size=32)
    decoded, nbytes = IdentityCodec().roundtrip(x, rng)
    np.testing.assert_array_equal(decoded, x)
    assert nbytes == 32 * 8


def test_pipeline_wire_size_is_last_stage(rng):
    x = rng.normal(size=128)
    pipeline = CodecPipeline([RotationCodec(seed=1), QuantizationCodec(bits=4)])
    _, nbytes = pipeline.encode(x, rng)
    assert nbytes == 16 + 64  # quantizer payload for the padded 128 coords


def test_pipeline_restores_original_length_and_space(rng):
    x = rng.normal(size=50)
    pipeline = CodecPipeline([RotationCodec(seed=1), QuantizationCodec(bits=12)])
    decoded, _ = pipeline.roundtrip(x, np.random.default_rng(7))
    assert decoded.shape == (50,)
    # 12-bit quantization in rotated space: reconstruction is close to x.
    assert np.abs(decoded - x).mean() < 0.05


def test_empty_pipeline_rejected():
    with pytest.raises(ValueError):
        CodecPipeline([])


def test_pipeline_type_checks():
    with pytest.raises(TypeError, match="VectorTransform"):
        CodecPipeline([QuantizationCodec(bits=8), QuantizationCodec(bits=8)])
