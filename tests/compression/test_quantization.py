"""Stochastic quantization: unbiasedness and error scaling."""

import numpy as np
import pytest

from repro.compression.quantization import QuantizationCodec


def test_roundtrip_error_bounded(rng):
    codec = QuantizationCodec(bits=8)
    x = rng.normal(size=500)
    decoded, nbytes = codec.roundtrip(x, rng)
    grid_step = (x.max() - x.min()) / codec.levels
    assert np.abs(decoded - x).max() <= grid_step + 1e-12
    assert nbytes < x.size * 8  # actually compressed


def test_unbiasedness(rng):
    """E[decode(encode(x))] = x: average many stochastic roundtrips."""
    codec = QuantizationCodec(bits=4)
    x = rng.normal(size=50)
    trials = np.stack([codec.roundtrip(x, rng)[0] for _ in range(3000)])
    bias = np.abs(trials.mean(axis=0) - x).max()
    grid_step = (x.max() - x.min()) / codec.levels
    # Standard error of the mean is ~grid/sqrt(12*3000); allow 6 sigma.
    assert bias < 6 * grid_step / np.sqrt(12 * 3000)


def test_more_bits_less_error(rng):
    x = rng.normal(size=1000)
    err = {}
    for bits in (2, 4, 8):
        decoded, _ = QuantizationCodec(bits=bits).roundtrip(
            x, np.random.default_rng(0)
        )
        err[bits] = np.abs(decoded - x).max()
    assert err[8] < err[4] < err[2]


def test_wire_size_scales_with_bits(rng):
    x = rng.normal(size=1000)
    sizes = {
        bits: QuantizationCodec(bits=bits).encode(x, rng)[1] for bits in (1, 8, 16)
    }
    assert sizes[1] < sizes[8] < sizes[16]
    assert sizes[8] == 16 + 1000


def test_constant_vector(rng):
    codec = QuantizationCodec(bits=8)
    x = np.full(10, 3.25)
    decoded, _ = codec.roundtrip(x, rng)
    np.testing.assert_allclose(decoded, x)


def test_bits_validation():
    with pytest.raises(ValueError):
        QuantizationCodec(bits=0)
    with pytest.raises(ValueError):
        QuantizationCodec(bits=17)
