"""Federated Analytics (Sec. 11 Federated Computation extension)."""

import numpy as np
import pytest

from repro.federated_analytics import (
    AnalyticsResult,
    HistogramSpec,
    count_statistic,
    histogram_statistic,
    run_federated_analytics,
    sum_and_count_statistic,
)
from repro.secagg.protocol import DropoutSchedule


def device_data(rng, n=30):
    return {uid: rng.normal(5.0, 2.0, size=rng.integers(5, 50)) for uid in range(n)}


def test_plain_aggregation_matches_ground_truth(rng):
    data = device_data(rng)
    spec = HistogramSpec(edges=tuple(np.linspace(-5, 15, 11)))
    result = run_federated_analytics(
        data,
        [count_statistic(), sum_and_count_statistic("latency"),
         histogram_statistic(spec)],
        rng,
    )
    assert result.totals["count"][0] == len(data)
    all_values = np.concatenate(list(data.values()))
    assert result.mean("latency") == pytest.approx(all_values.mean())
    expected_hist, _ = np.histogram(all_values, bins=spec.edges)
    np.testing.assert_array_equal(result.totals["histogram"], expected_hist)


def test_secure_aggregation_mode_matches_plain(rng):
    data = device_data(rng, n=12)
    stats = [count_statistic(), sum_and_count_statistic("m")]
    plain = run_federated_analytics(data, stats, np.random.default_rng(0))
    secure = run_federated_analytics(
        data, stats, np.random.default_rng(0), secure=True
    )
    assert secure.totals["count"][0] == pytest.approx(
        plain.totals["count"][0], abs=0.01
    )
    assert secure.mean("m") == pytest.approx(plain.mean("m"), rel=1e-3)


def test_secure_mode_tolerates_dropouts(rng):
    data = device_data(rng, n=12)
    dropouts = DropoutSchedule(after_share=frozenset({0, 1}))
    result = run_federated_analytics(
        data,
        [count_statistic()],
        rng,
        secure=True,
        dropouts=dropouts,
    )
    assert result.totals["count"][0] == pytest.approx(10, abs=0.01)


def test_mean_requires_sum_and_count_shape(rng):
    result = AnalyticsResult(totals={"x": np.array([1.0])}, num_reports=1)
    with pytest.raises(ValueError, match="sum-and-count"):
        result.mean("x")


def test_histogram_spec_validation():
    with pytest.raises(ValueError):
        HistogramSpec(edges=(1.0,))
    with pytest.raises(ValueError):
        HistogramSpec(edges=(2.0, 1.0))


def test_input_validation(rng):
    with pytest.raises(ValueError, match="no devices"):
        run_federated_analytics({}, [count_statistic()], rng)
    with pytest.raises(ValueError, match="no statistics"):
        run_federated_analytics({0: np.ones(3)}, [], rng)
    with pytest.raises(ValueError, match="unique"):
        run_federated_analytics(
            {0: np.ones(3)}, [count_statistic("a"), count_statistic("a")], rng
        )
