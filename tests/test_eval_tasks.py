"""Evaluation tasks end to end: metrics without model movement.

Sec. 3: "FL plans are not specialized to training, but can also encode
evaluation tasks - computing quality metrics from held out data that
wasn't used for training, analogous to the validation step in data
center training."  Sec. 7.4: round metrics are materialized with task
name, round number and operational annotations.
"""

import numpy as np
import pytest

from repro import (
    ClientTrainingConfig,
    FLSystem,
    FLSystemConfig,
    RoundConfig,
    SecAggConfig,
    TaskConfig,
    TaskKind,
)
from repro.core.checkpoint import FLCheckpoint
from repro.core.plan import generate_plan
from repro.core.task import SchedulingStrategy
from repro.device.example_store import ExampleStore
from repro.device.runtime import RealTrainer, SyntheticTrainer
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.nn.serialization import checkpoint_nbytes
from repro.sim.population import PopulationConfig


def test_real_trainer_eval_plan_reports_metrics_only(rng):
    model = LogisticRegression(input_dim=3, n_classes=2)
    store = ExampleStore(ttl_s=None)
    w = rng.normal(size=(3, 2))
    for i in range(50):
        x = rng.normal(size=3)
        store.add(x, int((x @ w).argmax()), float(i))
    params = model.init(rng)
    plan = generate_plan(
        task_id="t", kind=TaskKind.EVALUATION,
        client_config=ClientTrainingConfig(), secagg=SecAggConfig(),
        model_nbytes=checkpoint_nbytes(params),
    )
    ckpt = FLCheckpoint.from_params(params, "pop", "t", 0)
    result = RealTrainer(model=model, store=store).train(plan, ckpt, 100.0, rng)
    assert np.all(result.delta_vector == 0)
    assert "eval_loss" in result.metrics
    assert "eval_accuracy" in result.metrics
    assert result.upload_nbytes < 1024  # metrics payload, not a model
    # Held-out split: 20% of 50 examples.
    assert result.num_examples == 10


def test_synthetic_trainer_eval_plan_zero_delta(rng):
    plan = generate_plan(
        task_id="t", kind=TaskKind.EVALUATION,
        client_config=ClientTrainingConfig(), secagg=SecAggConfig(),
        model_nbytes=100,
    )
    model = LogisticRegression(input_dim=2, n_classes=2)
    ckpt = FLCheckpoint.from_params(model.init(rng), "pop", "t", 0)
    trainer = SyntheticTrainer(num_parameters=6)
    result = trainer.train(plan, ckpt, 0.0, rng)
    assert np.all(result.delta_vector == 0)
    assert "eval_loss" in result.metrics


@pytest.fixture(scope="module")
def alternating_system():
    config = FLSystemConfig(
        seed=23,
        population=PopulationConfig(num_devices=250),
        num_selectors=2,
        job=JobSchedule(1200.0, 0.5),
    )
    system = FLSystem(config)
    rc = RoundConfig(
        target_participants=12, selection_timeout_s=60, reporting_timeout_s=150
    )
    train = TaskConfig(
        task_id="pop/train", population_name="pop", round_config=rc
    )
    evaluate = TaskConfig(
        task_id="pop/eval", population_name="pop",
        kind=TaskKind.EVALUATION, round_config=rc,
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    system.deploy(
        [train, evaluate],
        model.init(np.random.default_rng(0)),
        strategy=SchedulingStrategy.ALTERNATE_TRAIN_EVAL,
    )
    system.run_for(3 * 3600)
    return system


def test_eval_rounds_do_not_advance_the_model(alternating_system):
    system = alternating_system
    eval_rounds = [
        r for r in system.round_results
        if r.task_id == "pop/eval" and r.committed
    ]
    assert len(eval_rounds) >= 2
    # Every persisted checkpoint must come from the training task.
    for ckpt in system.store.history("pop"):
        assert ckpt.task_id == "pop/train"
    # Write count: init + one per committed TRAINING round only.
    train_commits = sum(
        1
        for r in system.round_results
        if r.task_id == "pop/train" and r.committed
    )
    assert system.store.write_count == train_commits + 1


def test_metrics_materialized_per_round(alternating_system):
    system = alternating_system
    assert set(system.metrics.tasks()) == {"pop/train", "pop/eval"}
    eval_history = system.metrics.history("pop/eval")
    assert len(eval_history) >= 2
    record = eval_history[0]
    assert record.metadata["kind"] == "evaluation"
    assert "eval_loss" in record.summaries
    summary = record.summaries["eval_loss"].to_dict()
    assert summary["count"] >= 10  # one report per completed device
    # Rows load cleanly into data-science tooling (Sec. 7.4).
    rows = system.metrics.to_rows("pop/train")
    assert all("loss/mean" in row for row in rows)
    assert all(row["task_name"] == "pop/train" for row in rows)
