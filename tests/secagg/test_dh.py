"""Diffie–Hellman agreement symmetry, scalar and batched."""

import numpy as np

from repro.secagg.dh import (
    agree,
    agree_batch,
    agree_pairs_batch,
    generate_keypair,
    generate_keypairs_batch,
    public_key_of,
    public_keys_batch,
)
from repro.secagg.field import SECRET_BITS, SHAMIR_PRIME


def test_agreement_is_symmetric(rng):
    alice = generate_keypair(rng)
    bob = generate_keypair(rng)
    assert agree(alice.secret, bob.public) == agree(bob.secret, alice.public)


def test_distinct_pairs_get_distinct_keys(rng):
    a, b, c = (generate_keypair(rng) for _ in range(3))
    assert agree(a.secret, b.public) != agree(a.secret, c.public)


def test_public_key_recomputable_from_secret(rng):
    """The server re-derives a dropped device's public key to verify the
    reconstructed secret (protocol round 3)."""
    pair = generate_keypair(rng)
    assert public_key_of(pair.secret) == pair.public


def test_secrets_fit_in_shamir_field(rng):
    for _ in range(20):
        pair = generate_keypair(rng)
        assert 0 < pair.secret < SHAMIR_PRIME
        assert pair.secret.bit_length() <= SECRET_BITS


def test_agreed_keys_fit_in_shamir_field(rng):
    a, b = generate_keypair(rng), generate_keypair(rng)
    key = agree(a.secret, b.public)
    assert 0 <= key < SHAMIR_PRIME


def test_keypairs_batch_matches_scalar_loop_and_rng_trajectory():
    """The batch API must consume rng bytes in exactly the scalar order —
    the planes' equivalence contract rides on the shared trajectory."""
    rng_scalar = np.random.default_rng(42)
    rng_batch = np.random.default_rng(42)
    scalar = [generate_keypair(rng_scalar) for _ in range(17)]
    batch = generate_keypairs_batch(17, rng_batch)
    assert batch == scalar
    # Both generators must now sit at the same stream position.
    assert rng_scalar.bytes(16) == rng_batch.bytes(16)


def test_agree_batch_matches_scalar_and_is_symmetric(rng):
    pairs = [(generate_keypair(rng), generate_keypair(rng))
             for _ in range(12)]
    keys = agree_batch(
        [a.secret for a, _ in pairs], [b.public for _, b in pairs]
    )
    assert keys == [agree(a.secret, b.public) for a, b in pairs]
    assert keys == agree_batch(
        [b.secret for _, b in pairs], [a.public for a, _ in pairs]
    )


def test_agree_pairs_batch_matches_agree(rng):
    """The product trick — agree(a, g^b) == H(g^(a*b)) — is an exact
    group identity, so the both-secrets path must be bit-identical."""
    pairs = [(generate_keypair(rng), generate_keypair(rng))
             for _ in range(12)]
    keys = agree_pairs_batch([(a.secret, b.secret) for a, b in pairs])
    assert keys == [agree(a.secret, b.public) for a, b in pairs]
    assert agree_pairs_batch([]) == []


def test_public_keys_batch_matches_scalar(rng):
    secrets = [generate_keypair(rng).secret for _ in range(9)]
    assert public_keys_batch(secrets) == [
        public_key_of(s) for s in secrets
    ]
