"""Diffie–Hellman agreement symmetry."""

from repro.secagg.dh import agree, generate_keypair, public_key_of
from repro.secagg.field import SECRET_BITS, SHAMIR_PRIME


def test_agreement_is_symmetric(rng):
    alice = generate_keypair(rng)
    bob = generate_keypair(rng)
    assert agree(alice.secret, bob.public) == agree(bob.secret, alice.public)


def test_distinct_pairs_get_distinct_keys(rng):
    a, b, c = (generate_keypair(rng) for _ in range(3))
    assert agree(a.secret, b.public) != agree(a.secret, c.public)


def test_public_key_recomputable_from_secret(rng):
    """The server re-derives a dropped device's public key to verify the
    reconstructed secret (protocol round 3)."""
    pair = generate_keypair(rng)
    assert public_key_of(pair.secret) == pair.public


def test_secrets_fit_in_shamir_field(rng):
    for _ in range(20):
        pair = generate_keypair(rng)
        assert 0 < pair.secret < SHAMIR_PRIME
        assert pair.secret.bit_length() <= SECRET_BITS


def test_agreed_keys_fit_in_shamir_field(rng):
    a, b = generate_keypair(rng), generate_keypair(rng)
    key = agree(a.secret, b.public)
    assert 0 <= key < SHAMIR_PRIME
