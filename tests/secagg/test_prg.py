"""PRG expansion determinism — both mask endpoints must agree exactly."""

import numpy as np
import pytest

from repro.secagg.prg import prg_expand


def test_same_seed_same_stream():
    a = prg_expand(123456789, 100, 32)
    b = prg_expand(123456789, 100, 32)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    assert not np.array_equal(prg_expand(1, 100, 32), prg_expand(2, 100, 32))


def test_values_bounded_by_modulus():
    out = prg_expand(7, 1000, 16)
    assert out.max() < (1 << 16)
    assert out.dtype == np.uint64


def test_zero_length():
    assert prg_expand(5, 0, 32).size == 0


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        prg_expand(5, -1, 32)


def test_large_seed_is_truncated_consistently():
    """Seeds above 128 bits must map to the same stream deterministically."""
    big = (1 << 200) + 17
    np.testing.assert_array_equal(
        prg_expand(big, 50, 32), prg_expand(big % (1 << 128), 50, 32)
    )
