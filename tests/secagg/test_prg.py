"""PRG expansion determinism — both mask endpoints must agree exactly."""

import numpy as np
import pytest

from repro.secagg.prg import prg_expand


def test_same_seed_same_stream():
    a = prg_expand(123456789, 100, 32)
    b = prg_expand(123456789, 100, 32)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    assert not np.array_equal(prg_expand(1, 100, 32), prg_expand(2, 100, 32))


def test_values_bounded_by_modulus():
    out = prg_expand(7, 1000, 16)
    assert out.max() < (1 << 16)
    assert out.dtype == np.uint64


def test_zero_length():
    assert prg_expand(5, 0, 32).size == 0


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        prg_expand(5, -1, 32)


def test_large_seed_is_truncated_consistently():
    """Seeds above 128 bits must map to the same stream deterministically."""
    big = (1 << 200) + 17
    np.testing.assert_array_equal(
        prg_expand(big, 50, 32), prg_expand(big % (1 << 128), 50, 32)
    )


def test_batch_rows_match_scalar_expansion():
    from repro.secagg.prg import prg_expand_batch

    seeds = [0, 1, 123456789, (1 << 120) - 7, (1 << 200) + 17]
    for bits in (8, 32, 48, 63):
        rows = prg_expand_batch(seeds, 257, bits)
        assert rows.shape == (len(seeds), 257) and rows.dtype == np.uint64
        for i, seed in enumerate(seeds):
            np.testing.assert_array_equal(rows[i], prg_expand(seed, 257, bits))


def test_batch_out_buffer_reused():
    from repro.secagg.prg import prg_expand_batch

    out = np.empty((2, 64), dtype=np.uint64)
    result = prg_expand_batch([5, 6], 64, 32, out=out)
    assert result is out
    np.testing.assert_array_equal(out[0], prg_expand(5, 64, 32))
    with pytest.raises(ValueError, match="shape"):
        prg_expand_batch([5, 6, 7], 64, 32, out=out)
    assert prg_expand_batch([], 64, 32).shape == (0, 64)
    with pytest.raises(ValueError):
        prg_expand_batch([1], -1, 32)
