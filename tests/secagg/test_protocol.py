"""The four-round protocol: correctness, dropout matrix, threshold failures."""

import numpy as np
import pytest

from repro.secagg.masking import VectorQuantizer
from repro.secagg.protocol import (
    DropoutSchedule,
    SecAggError,
    SecureAggregationClient,
    run_secure_aggregation,
)


def quantizer(n=16):
    return VectorQuantizer(modulus_bits=32, clip_range=4.0, max_summands=n)


def make_inputs(rng, n=10, dim=40):
    return {uid: rng.uniform(-3, 3, size=dim) for uid in range(n)}


def test_exact_sum_without_dropouts(rng):
    inputs = make_inputs(rng)
    total, metrics = run_secure_aggregation(
        inputs, threshold=7, quantizer=quantizer(), rng=rng
    )
    expected = sum(inputs.values())
    assert np.abs(total - expected).max() <= quantizer().max_quantization_error(10)
    assert metrics.succeeded
    assert metrics.committed == 10
    assert metrics.key_agreements == 0  # nobody dropped -> no reconstruction


def test_dropout_after_advertise_excluded(rng):
    inputs = make_inputs(rng)
    drops = DropoutSchedule(after_advertise=frozenset({0, 1}))
    total, metrics = run_secure_aggregation(
        inputs, threshold=6, quantizer=quantizer(), rng=rng, dropouts=drops
    )
    expected = sum(v for u, v in inputs.items() if u not in {0, 1})
    assert np.abs(total - expected).max() <= quantizer().max_quantization_error(8)


def test_dropout_after_share_recovers_pairwise_masks(rng):
    """The hard case: devices in U2 \\ U3 leave dangling pairwise masks."""
    inputs = make_inputs(rng)
    drops = DropoutSchedule(after_share=frozenset({3, 4}))
    total, metrics = run_secure_aggregation(
        inputs, threshold=6, quantizer=quantizer(), rng=rng, dropouts=drops
    )
    expected = sum(v for u, v in inputs.items() if u not in {3, 4})
    assert np.abs(total - expected).max() <= quantizer().max_quantization_error(8)
    # Quadratic recovery work: 2 dropped x 8 survivors key agreements.
    assert metrics.key_agreements == 16
    assert metrics.dropped_before_commit == 2


def test_dropout_after_mask_included_in_sum(rng):
    """Sec. 6: 'All devices who complete this [Commit] round will have
    their model update included' even if they miss Finalization."""
    inputs = make_inputs(rng)
    drops = DropoutSchedule(after_mask=frozenset({5}))
    total, metrics = run_secure_aggregation(
        inputs, threshold=6, quantizer=quantizer(), rng=rng, dropouts=drops
    )
    expected = sum(inputs.values())  # everyone committed
    assert np.abs(total - expected).max() <= quantizer().max_quantization_error(10)
    assert metrics.dropped_after_commit == 1


def test_combined_dropouts_at_every_stage(rng):
    inputs = make_inputs(rng, n=14)
    drops = DropoutSchedule(
        after_advertise=frozenset({0}),
        after_share=frozenset({1, 2}),
        after_mask=frozenset({3}),
    )
    total, _ = run_secure_aggregation(
        inputs, threshold=8, quantizer=quantizer(), rng=rng, dropouts=drops
    )
    committed = set(range(14)) - {0, 1, 2}
    expected = sum(inputs[u] for u in committed)
    assert np.abs(total - expected).max() <= quantizer().max_quantization_error(
        len(committed)
    )


def test_below_threshold_at_advertise_fails(rng):
    inputs = make_inputs(rng, n=5)
    with pytest.raises(SecAggError, match="advertised"):
        run_secure_aggregation(inputs, threshold=6, quantizer=quantizer(), rng=rng)


def test_below_threshold_at_share_fails(rng):
    inputs = make_inputs(rng, n=8)
    drops = DropoutSchedule(after_advertise=frozenset({0, 1, 2}))
    with pytest.raises(SecAggError, match="shared keys"):
        run_secure_aggregation(
            inputs, threshold=6, quantizer=quantizer(), rng=rng, dropouts=drops
        )


def test_below_threshold_at_commit_fails(rng):
    inputs = make_inputs(rng, n=8)
    drops = DropoutSchedule(after_share=frozenset({0, 1, 2}))
    with pytest.raises(SecAggError, match="committed"):
        run_secure_aggregation(
            inputs, threshold=6, quantizer=quantizer(), rng=rng, dropouts=drops
        )


def test_below_threshold_at_finalize_fails(rng):
    inputs = make_inputs(rng, n=8)
    drops = DropoutSchedule(after_mask=frozenset({0, 1, 2}))
    with pytest.raises(SecAggError, match="unmasking"):
        run_secure_aggregation(
            inputs, threshold=6, quantizer=quantizer(), rng=rng, dropouts=drops
        )


def test_client_refuses_to_reveal_both_shares(rng):
    client = SecureAggregationClient(0, np.zeros(4), quantizer(), 2, rng)
    with pytest.raises(SecAggError, match="both"):
        client.unmask_shares(survivors=[1, 2], dropped=[2, 3])


def test_mismatched_input_shapes_rejected(rng):
    inputs = {0: np.zeros(4), 1: np.zeros(5)}
    with pytest.raises(ValueError, match="shape"):
        run_secure_aggregation(inputs, threshold=2, quantizer=quantizer(), rng=rng)


def test_masked_inputs_hide_individual_vectors(rng):
    """Honest-but-curious server: committed vectors are uniformly masked."""
    q = quantizer()
    inputs = make_inputs(rng, n=6, dim=30)
    clients = {
        uid: SecureAggregationClient(uid, vec, q, 4, rng)
        for uid, vec in inputs.items()
    }
    roster = {uid: c.advertise_keys() for uid, c in clients.items()}
    cts = {uid: c.share_keys(roster) for uid, c in clients.items()}
    inbox = {uid: [] for uid in clients}
    for sender_cts in cts.values():
        for ct in sender_cts:
            inbox[ct.recipient_id].append(ct)
    u2 = sorted(clients)
    for uid, client in clients.items():
        masked = client.masked_input(inbox[uid], u2)
        quantized = q.quantize(inputs[uid])
        # The masked vector must differ from the raw quantized input in
        # essentially every coordinate.
        assert np.mean(masked == quantized) < 0.1
