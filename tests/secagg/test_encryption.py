"""Share transport encryption: roundtrip and tamper detection."""

import dataclasses

import pytest

from repro.secagg.encryption import AuthenticationError, decrypt, encrypt


def test_roundtrip():
    ct = encrypt(key=12345, sender_id=1, recipient_id=2, plaintext=b"hello shares")
    assert decrypt(12345, ct) == b"hello shares"


def test_wrong_key_fails_authentication():
    ct = encrypt(key=12345, sender_id=1, recipient_id=2, plaintext=b"data")
    with pytest.raises(AuthenticationError):
        decrypt(54321, ct)


def test_tampered_body_detected():
    ct = encrypt(key=9, sender_id=1, recipient_id=2, plaintext=b"payload")
    tampered = dataclasses.replace(ct, body=bytes([ct.body[0] ^ 1]) + ct.body[1:])
    with pytest.raises(AuthenticationError):
        decrypt(9, tampered)


def test_rerouted_ciphertext_detected():
    """Swapping recipient ids invalidates the MAC (misrouting defence)."""
    ct = encrypt(key=9, sender_id=1, recipient_id=2, plaintext=b"x" * 40)
    rerouted = dataclasses.replace(ct, recipient_id=3)
    with pytest.raises(AuthenticationError):
        decrypt(9, rerouted)


def test_ciphertext_hides_plaintext():
    plaintext = b"\x00" * 64
    ct = encrypt(key=7, sender_id=1, recipient_id=2, plaintext=plaintext)
    assert ct.body != plaintext


def test_long_payloads():
    payload = bytes(range(256)) * 10
    ct = encrypt(key=3, sender_id=5, recipient_id=6, plaintext=payload)
    assert decrypt(3, ct) == payload
