"""Quantization and double masking invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secagg.field import ring_add
from repro.secagg.masking import VectorQuantizer, apply_masks


def test_quantizer_roundtrip_single_vector(rng):
    q = VectorQuantizer(modulus_bits=32, clip_range=4.0, max_summands=10)
    x = rng.uniform(-4, 4, size=200)
    decoded = q.dequantize_sum(q.quantize(x))
    assert np.abs(decoded - x).max() <= q.max_quantization_error(1)


@given(
    n_vecs=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_quantized_sums_decode_within_bound(n_vecs, seed):
    rng = np.random.default_rng(seed)
    q = VectorQuantizer(modulus_bits=32, clip_range=2.0, max_summands=8)
    vectors = [rng.uniform(-2, 2, size=50) for _ in range(n_vecs)]
    acc = q.quantize(vectors[0])
    for v in vectors[1:]:
        acc = ring_add(acc, q.quantize(v), 32)
    decoded = q.dequantize_sum(acc)
    assert np.abs(decoded - sum(vectors)).max() <= q.max_quantization_error(n_vecs)


def test_quantizer_clips_out_of_range(rng):
    q = VectorQuantizer(modulus_bits=32, clip_range=1.0, max_summands=2)
    decoded = q.dequantize_sum(q.quantize(np.array([100.0, -100.0])))
    np.testing.assert_allclose(decoded, [1.0, -1.0], atol=1e-6)


def test_quantizer_validation():
    with pytest.raises(ValueError):
        VectorQuantizer(clip_range=0.0)
    with pytest.raises(ValueError):
        VectorQuantizer(max_summands=0)
    with pytest.raises(ValueError, match="modulus too small"):
        VectorQuantizer(modulus_bits=8, clip_range=1000.0, max_summands=1000)


def test_pairwise_masks_cancel_in_sums(rng):
    """The core masking identity: Σ_u y_u == Σ_u x_u when everyone commits."""
    q = VectorQuantizer(modulus_bits=32, clip_range=2.0, max_summands=8)
    users = [0, 1, 2, 3]
    # Symmetric seeds: seed for (u, v) identical from both sides.
    seeds = {}
    for u in users:
        for v in users:
            if u < v:
                seeds[(u, v)] = int(rng.integers(1, 2**60))
    vectors = {u: rng.uniform(-2, 2, size=30) for u in users}
    masked_total = None
    self_mask_total = np.zeros(30, dtype=np.uint64)
    for u in users:
        pairwise = {
            v: seeds[(min(u, v), max(u, v))] for v in users if v != u
        }
        self_seed = 1000 + u
        y = apply_masks(q.quantize(vectors[u]), self_seed, pairwise, u, 32)
        masked_total = y if masked_total is None else ring_add(masked_total, y, 32)
        from repro.secagg.prg import prg_expand

        self_mask_total = ring_add(
            self_mask_total, prg_expand(self_seed, 30, 32), 32
        )
    # Remove self masks; pairwise masks must have cancelled by antisymmetry.
    from repro.secagg.field import ring_sub

    unmasked = ring_sub(masked_total, self_mask_total, 32)
    decoded = q.dequantize_sum(unmasked)
    expected = sum(vectors.values())
    assert np.abs(decoded - expected).max() <= q.max_quantization_error(4)


def test_masked_vector_is_not_the_input(rng):
    """Privacy smoke check: a masked vector differs from its quantized input."""
    q = VectorQuantizer(modulus_bits=32, clip_range=2.0, max_summands=4)
    x = rng.uniform(-2, 2, size=100)
    quantized = q.quantize(x)
    y = apply_masks(quantized, self_seed=42, pairwise_seeds={1: 77}, my_id=0,
                    modulus_bits=32)
    assert not np.array_equal(y, quantized)


def test_self_pairing_rejected(rng):
    q = VectorQuantizer()
    with pytest.raises(ValueError, match="itself"):
        apply_masks(q.quantize(np.zeros(4)), 1, {3: 9}, my_id=3, modulus_bits=32)
