"""Bit-identity of the Montgomery substrate against ``pow(b, e, p)``.

Every claim the cross-group SecAgg plane makes rests on these: the limb
kernels must agree with CPython's big-int ``pow`` on *every* input, not
statistically, so edge exponents (the forced-high-bit minimum secret,
the maximal 120-bit secret, exponent one and zero) and edge bases
(0, 1, p-1, non-canonical >= p) are pinned alongside random draws.
"""

import random

import pytest

from repro.secagg.bigmod import MODULUS, FixedBaseTable, powmod_batch
from repro.secagg.field import SECRET_BITS

#: Edge exponents the DH layer can actually produce: the smallest secret
#: the forced-high-bit draw permits, the largest 120-bit value, and the
#: degenerate one/zero cases.
EDGE_EXPONENTS = [0, 1, 1 << (SECRET_BITS - 8), (1 << SECRET_BITS) - 1]


def test_powmod_batch_matches_builtin_pow():
    rnd = random.Random(1234)
    bases = [rnd.randrange(MODULUS) for _ in range(64)]
    exponents = [rnd.randrange(1 << SECRET_BITS) for _ in range(64)]
    assert powmod_batch(bases, exponents) == [
        pow(b, e, MODULUS) for b, e in zip(bases, exponents)
    ]


def test_powmod_batch_edge_exponents():
    rnd = random.Random(99)
    for e in EDGE_EXPONENTS:
        bases = [rnd.randrange(MODULUS) for _ in range(5)] + [2]
        assert powmod_batch(bases, [e] * len(bases)) == [
            pow(b, e, MODULUS) for b in bases
        ]


def test_powmod_batch_edge_bases():
    # Non-canonical bases (>= p) must reduce first, exactly as pow does.
    bases = [0, 1, MODULUS - 1, MODULUS, MODULUS + 7]
    exponents = [3, (1 << SECRET_BITS) - 1, 2, 5, 1]
    assert powmod_batch(bases, exponents) == [
        pow(b, e, MODULUS) for b, e in zip(bases, exponents)
    ]


def test_powmod_batch_empty_and_validation():
    assert powmod_batch([], []) == []
    with pytest.raises(ValueError):
        powmod_batch([2], [1, 2])
    with pytest.raises(ValueError):
        powmod_batch([2], [-1])


def test_fixed_base_table_matches_pow():
    rnd = random.Random(7)
    table = FixedBaseTable(2)
    # Products of two secrets reach 240-247 bits — the widest exponents
    # the pairwise-agreement path feeds the table.
    exponents = (
        [rnd.randrange(1 << SECRET_BITS) for _ in range(20)]
        + [rnd.randrange(1 << 247) for _ in range(20)]
        + EDGE_EXPONENTS
        + [(1 << 247) - 1, 1 << 240]
    )
    assert table.pow_batch(exponents) == [
        pow(2, e, MODULUS) for e in exponents
    ]


def test_fixed_base_table_grows_lazily():
    table = FixedBaseTable(3)
    small = [5, (1 << SECRET_BITS) - 1]
    assert table.pow_batch(small) == [pow(3, e, MODULUS) for e in small]
    # A wider exponent arriving later must extend the table, not wrap.
    wide = [(1 << 247) - 1]
    assert table.pow_batch(wide) == [pow(3, e, MODULUS) for e in wide]


def test_pow_batch_bytes_is_canonical_little_endian():
    rnd = random.Random(31)
    table = FixedBaseTable(2)
    exponents = [rnd.randrange(1 << 247) for _ in range(32)] + EDGE_EXPONENTS
    assert table.pow_batch_bytes(exponents) == [
        pow(2, e, MODULUS).to_bytes(32, "little") for e in exponents
    ]


def test_fixed_base_table_empty_and_validation():
    table = FixedBaseTable(2)
    assert table.pow_batch([]) == []
    assert table.pow_batch_bytes([]) == []
    with pytest.raises(ValueError):
        table.pow_batch([-1])
