"""Per-Aggregator SecAgg groups and the master's plain combine."""

import numpy as np
import pytest

from repro.secagg.grouped import (
    grouped_secure_sum,
    grouped_secure_sum_transcripts,
    partition_into_groups,
)
from repro.secagg.masking import VectorQuantizer
from repro.secagg.protocol import DropoutSchedule, SecAggError

#: Every grouped execution plane; all three must be byte-equivalent.
ALL_PLANES = ("scalar", "vectorized_pergroup", "vectorized")


def test_partition_all_groups_at_least_k():
    groups = partition_into_groups(list(range(25)), min_group_size=10)
    assert len(groups) == 2
    assert all(len(g) >= 10 for g in groups)
    assert sorted(sum(groups, [])) == list(range(25))


def test_partition_single_group_under_2k():
    groups = partition_into_groups(list(range(15)), min_group_size=10)
    assert len(groups) == 1


def test_partition_too_few_users():
    with pytest.raises(SecAggError):
        partition_into_groups(list(range(5)), min_group_size=10)


def test_partition_validates_k():
    with pytest.raises(ValueError):
        partition_into_groups([1, 2, 3], min_group_size=1)


def test_grouped_sum_matches_plain_sum(rng):
    inputs = {uid: rng.uniform(-2, 2, size=30) for uid in range(30)}
    q = VectorQuantizer(modulus_bits=32, clip_range=2.5, max_summands=32)
    total, metrics_list = grouped_secure_sum(
        inputs, min_group_size=10, threshold_fraction=0.7, quantizer=q, rng=rng
    )
    expected = sum(inputs.values())
    # Each group introduces its own quantization error.
    bound = sum(q.max_quantization_error(12) for _ in metrics_list)
    assert np.abs(total - expected).max() <= bound
    assert len(metrics_list) == 3


def test_grouped_sum_with_dropouts(rng):
    inputs = {uid: rng.uniform(-1, 1, size=20) for uid in range(20)}
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=32)
    drops = DropoutSchedule(after_share=frozenset({0, 11}))
    total, metrics_list = grouped_secure_sum(
        inputs, min_group_size=10, threshold_fraction=0.6,
        quantizer=q, rng=rng, dropouts=drops,
    )
    expected = sum(v for u, v in inputs.items() if u not in {0, 11})
    bound = sum(q.max_quantization_error(10) for _ in metrics_list)
    assert np.abs(total - expected).max() <= bound


def test_group_cost_is_bounded_by_group_size(rng):
    """Sec. 6's point: grouping caps the quadratic cost per instance."""
    inputs = {uid: rng.uniform(-1, 1, size=10) for uid in range(40)}
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=64)
    drops = DropoutSchedule(after_share=frozenset({1, 11, 21, 31}))
    _, metrics_list = grouped_secure_sum(
        inputs, min_group_size=10, threshold_fraction=0.6,
        quantizer=q, rng=rng, dropouts=drops,
    )
    for metrics in metrics_list:
        # Each group: 1 dropped x <=9 survivors, never 4 x 36.
        assert metrics.key_agreements <= 9


# -- cross-group plane equivalence --------------------------------------------


def _fleet(n=60, dim=13, seed=11):
    r = np.random.default_rng(seed)
    return {uid: r.uniform(-1, 1, size=dim) for uid in range(n)}


def _fleet_drops(n=60):
    return DropoutSchedule(
        after_advertise=frozenset(u for u in range(n) if u % 10 == 3),
        after_share=frozenset(u for u in range(n) if u % 10 == 6),
        after_mask=frozenset(u for u in range(n) if u % 10 == 9),
    )


def test_three_planes_identical_sums_metrics_and_rng():
    """The cross-group plane batches DH/PRG/recovery over all groups at
    once; the contract is byte-identity with the sequential planes, rng
    trajectory included."""
    inputs = _fleet()
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=64)
    results = {}
    for plane in ALL_PLANES:
        plane_rng = np.random.default_rng(77)
        total, metrics = grouped_secure_sum(
            inputs, min_group_size=15, threshold_fraction=0.66,
            quantizer=q, rng=plane_rng, dropouts=_fleet_drops(),
            plane=plane,
        )
        results[plane] = (total, metrics, plane_rng.bytes(8))
    base_total, base_metrics, base_probe = results["scalar"]
    assert len(base_metrics) == 4
    for plane in ALL_PLANES[1:]:
        total, metrics, probe = results[plane]
        assert np.array_equal(total, base_total), plane
        assert metrics == base_metrics, plane
        assert probe == base_probe, plane


def test_three_planes_identical_transcripts():
    inputs = _fleet(n=30)
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=64)
    captured = {}
    for plane in ALL_PLANES:
        _, _, transcripts = grouped_secure_sum_transcripts(
            inputs, min_group_size=10, threshold_fraction=0.66,
            quantizer=q, rng=np.random.default_rng(5),
            dropouts=_fleet_drops(30), plane=plane,
        )
        captured[plane] = transcripts
    base = captured["scalar"]
    for plane in ALL_PLANES[1:]:
        assert len(captured[plane]) == len(base) == 3
        for tr, tr0 in zip(captured[plane], base):
            assert set(tr.masked) == set(tr0.masked)
            for uid in tr0.masked:
                assert np.array_equal(tr.masked[uid], tr0.masked[uid])
            assert tr.shares == tr0.shares
            assert np.array_equal(tr.ring_sum, tr0.ring_sum)


def test_mid_sequence_group_failure_parity():
    """A threshold failure in a *later* group must surface the same
    error at the same rng position on every plane — earlier groups'
    draws (and the failing group's own) happen in sequential order even
    on the cross-group plane."""
    inputs = _fleet(n=45)
    # Kill most of the last group (uids 30-44) after ShareKeys.
    drops = DropoutSchedule(after_share=frozenset(range(32, 45)))
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=64)
    observed = {}
    for plane in ALL_PLANES:
        plane_rng = np.random.default_rng(21)
        with pytest.raises(SecAggError) as exc:
            grouped_secure_sum(
                inputs, min_group_size=15, threshold_fraction=0.66,
                quantizer=q, rng=plane_rng, dropouts=drops, plane=plane,
            )
        observed[plane] = (str(exc.value), plane_rng.bytes(8))
    assert observed["scalar"] == observed["vectorized_pergroup"]
    assert observed["scalar"] == observed["vectorized"]
    assert "committed, threshold is" in observed["scalar"][0]


def test_phase_breakdown_populated_only_with_timer():
    inputs = _fleet(n=30)
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=64)

    def run(plane, timer=None):
        return grouped_secure_sum(
            inputs, min_group_size=10, threshold_fraction=0.66,
            quantizer=q, rng=np.random.default_rng(5),
            dropouts=_fleet_drops(30), plane=plane, timer=timer,
        )

    for plane in ALL_PLANES:
        _, metrics = run(plane)
        for m in metrics:
            assert m.key_agreement_seconds == 0.0
            assert m.masking_seconds == 0.0
            assert m.recovery_seconds == 0.0
    for plane in ("vectorized_pergroup", "vectorized"):
        ticks = iter(float(i) for i in range(1000))
        _, metrics = run(plane, timer=lambda: next(ticks))
        phase_total = sum(
            m.key_agreement_seconds + m.masking_seconds + m.recovery_seconds
            for m in metrics
        )
        assert phase_total > 0.0, plane
