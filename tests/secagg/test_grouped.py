"""Per-Aggregator SecAgg groups and the master's plain combine."""

import numpy as np
import pytest

from repro.secagg.grouped import grouped_secure_sum, partition_into_groups
from repro.secagg.masking import VectorQuantizer
from repro.secagg.protocol import DropoutSchedule, SecAggError


def test_partition_all_groups_at_least_k():
    groups = partition_into_groups(list(range(25)), min_group_size=10)
    assert len(groups) == 2
    assert all(len(g) >= 10 for g in groups)
    assert sorted(sum(groups, [])) == list(range(25))


def test_partition_single_group_under_2k():
    groups = partition_into_groups(list(range(15)), min_group_size=10)
    assert len(groups) == 1


def test_partition_too_few_users():
    with pytest.raises(SecAggError):
        partition_into_groups(list(range(5)), min_group_size=10)


def test_partition_validates_k():
    with pytest.raises(ValueError):
        partition_into_groups([1, 2, 3], min_group_size=1)


def test_grouped_sum_matches_plain_sum(rng):
    inputs = {uid: rng.uniform(-2, 2, size=30) for uid in range(30)}
    q = VectorQuantizer(modulus_bits=32, clip_range=2.5, max_summands=32)
    total, metrics_list = grouped_secure_sum(
        inputs, min_group_size=10, threshold_fraction=0.7, quantizer=q, rng=rng
    )
    expected = sum(inputs.values())
    # Each group introduces its own quantization error.
    bound = sum(q.max_quantization_error(12) for _ in metrics_list)
    assert np.abs(total - expected).max() <= bound
    assert len(metrics_list) == 3


def test_grouped_sum_with_dropouts(rng):
    inputs = {uid: rng.uniform(-1, 1, size=20) for uid in range(20)}
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=32)
    drops = DropoutSchedule(after_share=frozenset({0, 11}))
    total, metrics_list = grouped_secure_sum(
        inputs, min_group_size=10, threshold_fraction=0.6,
        quantizer=q, rng=rng, dropouts=drops,
    )
    expected = sum(v for u, v in inputs.items() if u not in {0, 11})
    bound = sum(q.max_quantization_error(10) for _ in metrics_list)
    assert np.abs(total - expected).max() <= bound


def test_group_cost_is_bounded_by_group_size(rng):
    """Sec. 6's point: grouping caps the quadratic cost per instance."""
    inputs = {uid: rng.uniform(-1, 1, size=10) for uid in range(40)}
    q = VectorQuantizer(modulus_bits=32, clip_range=1.5, max_summands=64)
    drops = DropoutSchedule(after_share=frozenset({1, 11, 21, 31}))
    _, metrics_list = grouped_secure_sum(
        inputs, min_group_size=10, threshold_fraction=0.6,
        quantizer=q, rng=rng, dropouts=drops,
    )
    for metrics in metrics_list:
        # Each group: 1 dropped x <=9 survivors, never 4 x 36.
        assert metrics.key_agreements <= 9
