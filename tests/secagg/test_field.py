"""Field and ring arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secagg.field import (
    SHAMIR_PRIME,
    centered_mod,
    eval_polynomial,
    mod_inverse,
    ring_add,
    ring_sub,
)


@given(st.integers(min_value=1, max_value=SHAMIR_PRIME - 1))
@settings(max_examples=50, deadline=None)
def test_mod_inverse_property(a):
    assert (a * mod_inverse(a)) % SHAMIR_PRIME == 1


def test_mod_inverse_of_zero():
    with pytest.raises(ZeroDivisionError):
        mod_inverse(0)


def test_eval_polynomial_horner():
    # f(x) = 3 + 2x + x^2 at x=5 -> 3 + 10 + 25 = 38
    assert eval_polynomial([3, 2, 1], 5) == 38


def test_ring_add_wraps():
    bits = 8
    a = np.array([250], dtype=np.uint64)
    b = np.array([10], dtype=np.uint64)
    assert ring_add(a, b, bits)[0] == 4  # 260 mod 256


def test_ring_sub_wraps():
    bits = 8
    a = np.array([5], dtype=np.uint64)
    b = np.array([10], dtype=np.uint64)
    assert ring_sub(a, b, bits)[0] == 251


@given(
    st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20),
    st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_ring_add_sub_roundtrip(xs, ys):
    n = min(len(xs), len(ys))
    a = np.array(xs[:n], dtype=np.uint64)
    b = np.array(ys[:n], dtype=np.uint64)
    bits = 16
    np.testing.assert_array_equal(ring_sub(ring_add(a, b, bits), b, bits), a)


def test_centered_mod_maps_to_signed_range():
    bits = 8
    values = np.array([0, 1, 127, 128, 255], dtype=np.uint64)
    out = centered_mod(values, bits)
    np.testing.assert_array_equal(out, [0, 1, 127, -128, -1])


def test_centered_mod_full_width_moduli():
    """b = 63 and 64 decode correctly (no int64 shift overflow)."""
    vals = np.array([0, 1, (1 << 62) - 1, 1 << 62, (1 << 63) - 1], dtype=np.uint64)
    out = centered_mod(vals, 63)
    assert out[3] == -(1 << 62) and out[4] == -1
    vals64 = np.array([0, (1 << 63) - 1, 1 << 63, (1 << 64) - 1], dtype=np.uint64)
    out64 = centered_mod(vals64, 64)
    assert out64[2] == -(1 << 63) and out64[3] == -1
    with pytest.raises(ValueError, match=r"\[1, 64\]"):
        centered_mod(vals, 65)


@given(
    st.lists(
        st.integers(min_value=1, max_value=SHAMIR_PRIME - 1),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=30, deadline=None)
def test_mod_inverse_batch_matches_scalar(values):
    from repro.secagg.field import mod_inverse_batch

    assert mod_inverse_batch(values) == [mod_inverse(v) for v in values]


def test_mod_inverse_batch_rejects_zero():
    from repro.secagg.field import mod_inverse_batch

    assert mod_inverse_batch([]) == []
    with pytest.raises(ZeroDivisionError):
        mod_inverse_batch([3, 0, 5])


def test_lagrange_coefficients_shared_basis():
    """Σ λ_i f(x_i) = f(0) for any polynomial over the shared x-set."""
    from repro.secagg.field import lagrange_coefficients_at_zero

    xs = [2, 5, 9, 11]
    lambdas = lagrange_coefficients_at_zero(xs)
    coeffs = [1234567, 42, 7, 99]  # f of degree 3 = len(xs) - 1
    acc = 0
    for x, lam in zip(xs, lambdas):
        acc = (acc + eval_polynomial(coeffs, x) * lam) % SHAMIR_PRIME
    assert acc == coeffs[0]
    with pytest.raises(ValueError, match="duplicate"):
        lagrange_coefficients_at_zero([1, 1, 2])
    with pytest.raises(ValueError, match="no share indices"):
        lagrange_coefficients_at_zero([])


@given(
    n_polys=st.integers(min_value=1, max_value=6),
    degree=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_eval_polynomial_batch_matches_scalar(n_polys, degree, data):
    from repro.secagg.field import eval_polynomial_batch

    coeff_st = st.integers(min_value=0, max_value=SHAMIR_PRIME - 1)
    coeffs = [
        data.draw(st.lists(coeff_st, min_size=1, max_size=degree + 1))
        for _ in range(n_polys)
    ]
    xs = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=2**32 - 1),
            min_size=1, max_size=8,
        )
    )
    out = eval_polynomial_batch(coeffs, xs)
    assert out == [[eval_polynomial(c, x) for x in xs] for c in coeffs]


def test_eval_polynomial_batch_worst_case_coefficients():
    """All-maximal coefficients stress the deferred-carry limb path."""
    from repro.secagg.field import eval_polynomial_batch

    coeffs = [[SHAMIR_PRIME - 1] * 33, [SHAMIR_PRIME - 1] * 40]
    xs = [1, 2, (1 << 32) - 1]
    out = eval_polynomial_batch(coeffs, xs)
    assert out == [[eval_polynomial(c, x) for x in xs] for c in coeffs]
