"""Field and ring arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secagg.field import (
    SHAMIR_PRIME,
    centered_mod,
    eval_polynomial,
    mod_inverse,
    ring_add,
    ring_sub,
)


@given(st.integers(min_value=1, max_value=SHAMIR_PRIME - 1))
@settings(max_examples=50, deadline=None)
def test_mod_inverse_property(a):
    assert (a * mod_inverse(a)) % SHAMIR_PRIME == 1


def test_mod_inverse_of_zero():
    with pytest.raises(ZeroDivisionError):
        mod_inverse(0)


def test_eval_polynomial_horner():
    # f(x) = 3 + 2x + x^2 at x=5 -> 3 + 10 + 25 = 38
    assert eval_polynomial([3, 2, 1], 5) == 38


def test_ring_add_wraps():
    bits = 8
    a = np.array([250], dtype=np.uint64)
    b = np.array([10], dtype=np.uint64)
    assert ring_add(a, b, bits)[0] == 4  # 260 mod 256


def test_ring_sub_wraps():
    bits = 8
    a = np.array([5], dtype=np.uint64)
    b = np.array([10], dtype=np.uint64)
    assert ring_sub(a, b, bits)[0] == 251


@given(
    st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20),
    st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_ring_add_sub_roundtrip(xs, ys):
    n = min(len(xs), len(ys))
    a = np.array(xs[:n], dtype=np.uint64)
    b = np.array(ys[:n], dtype=np.uint64)
    bits = 16
    np.testing.assert_array_equal(ring_sub(ring_add(a, b, bits), b, bits), a)


def test_centered_mod_maps_to_signed_range():
    bits = 8
    values = np.array([0, 1, 127, 128, 255], dtype=np.uint64)
    out = centered_mod(values, bits)
    np.testing.assert_array_equal(out, [0, 1, 127, -128, -1])
