"""Shamir sharing: reconstruction from any t-subset, and only from those."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secagg.shamir import ShamirShare, reconstruct_secret, share_secret


@given(
    secret=st.integers(min_value=0, max_value=2**120 - 1),
    n=st.integers(min_value=3, max_value=12),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_any_threshold_subset_reconstructs(secret, n, data):
    threshold = data.draw(st.integers(min_value=2, max_value=n))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    shares = share_secret(secret, n, threshold, rng)
    subset_idx = data.draw(
        st.lists(
            st.integers(0, n - 1), min_size=threshold, max_size=threshold, unique=True
        )
    )
    subset = [shares[i] for i in subset_idx]
    assert reconstruct_secret(subset) == secret


def test_fewer_than_threshold_reveals_nothing(rng):
    secret = 123456789
    shares = share_secret(secret, 6, 4, rng)
    # Reconstruction from t-1 shares is just interpolation of a random
    # degree-3 polynomial through 3 points: overwhelmingly wrong.
    wrong = reconstruct_secret(shares[:3])
    assert wrong != secret


def test_share_index_zero_forbidden():
    with pytest.raises(ValueError, match="leak"):
        ShamirShare(x=0, y=5)


def test_duplicate_indices_rejected(rng):
    shares = share_secret(42, 5, 3, rng)
    with pytest.raises(ValueError, match="duplicate"):
        reconstruct_secret([shares[0], shares[0], shares[1]])


def test_validation_errors(rng):
    with pytest.raises(ValueError):
        share_secret(-1, 5, 3, rng)
    with pytest.raises(ValueError):
        share_secret(1, 2, 3, rng)  # fewer shares than threshold
    with pytest.raises(ValueError):
        share_secret(1, 5, 0, rng)
    with pytest.raises(ValueError):
        reconstruct_secret([])


def test_threshold_one_is_constant_polynomial(rng):
    shares = share_secret(99, 4, 1, rng)
    for share in shares:
        assert reconstruct_secret([share]) == 99
