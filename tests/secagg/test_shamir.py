"""Shamir sharing: reconstruction from any t-subset, and only from those."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secagg.shamir import ShamirShare, reconstruct_secret, share_secret


@given(
    secret=st.integers(min_value=0, max_value=2**120 - 1),
    n=st.integers(min_value=3, max_value=12),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_any_threshold_subset_reconstructs(secret, n, data):
    threshold = data.draw(st.integers(min_value=2, max_value=n))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    shares = share_secret(secret, n, threshold, rng)
    subset_idx = data.draw(
        st.lists(
            st.integers(0, n - 1), min_size=threshold, max_size=threshold, unique=True
        )
    )
    subset = [shares[i] for i in subset_idx]
    assert reconstruct_secret(subset) == secret


def test_fewer_than_threshold_reveals_nothing(rng):
    secret = 123456789
    shares = share_secret(secret, 6, 4, rng)
    # Reconstruction from t-1 shares is just interpolation of a random
    # degree-3 polynomial through 3 points: overwhelmingly wrong.
    wrong = reconstruct_secret(shares[:3])
    assert wrong != secret


def test_share_index_zero_forbidden():
    with pytest.raises(ValueError, match="leak"):
        ShamirShare(x=0, y=5)


def test_duplicate_indices_rejected(rng):
    shares = share_secret(42, 5, 3, rng)
    with pytest.raises(ValueError, match="duplicate"):
        reconstruct_secret([shares[0], shares[0], shares[1]])


def test_validation_errors(rng):
    with pytest.raises(ValueError):
        share_secret(-1, 5, 3, rng)
    with pytest.raises(ValueError):
        share_secret(1, 2, 3, rng)  # fewer shares than threshold
    with pytest.raises(ValueError):
        share_secret(1, 5, 0, rng)
    with pytest.raises(ValueError):
        reconstruct_secret([])


def test_threshold_one_is_constant_polynomial(rng):
    shares = share_secret(99, 4, 1, rng)
    for share in shares:
        assert reconstruct_secret([share]) == 99


def test_share_secrets_batch_matches_scalar_and_rng_trajectory():
    """Batch sharing draws the exact coefficients the scalar loop would,
    in the same order, and produces bit-identical share values."""
    from repro.secagg.shamir import share_secrets_batch

    rng = np.random.default_rng(2019)
    rng2 = np.random.default_rng(2019)
    secrets = [0, 1, 42, 2**120 - 1, 2**119 + 7]
    n, t = 9, 4
    ys = share_secrets_batch(secrets, n, t, rng)
    scalar = [share_secret(s, n, t, rng2) for s in secrets]
    for i, shares in enumerate(scalar):
        assert ys[i] == [sh.y for sh in shares]
        assert [sh.x for sh in shares] == list(range(1, n + 1))
    # Identical rng stream position afterwards.
    assert rng.bytes(16) == rng2.bytes(16)


def test_share_secrets_batch_validation(rng):
    from repro.secagg.shamir import share_secrets_batch

    with pytest.raises(ValueError, match="threshold"):
        share_secrets_batch([1], 5, 0, rng)
    with pytest.raises(ValueError, match="at least threshold"):
        share_secrets_batch([1], 2, 3, rng)
    with pytest.raises(ValueError, match="field range"):
        share_secrets_batch([1, -1], 5, 3, rng)
    assert share_secrets_batch([], 5, 3, rng) == []


def test_reconstruct_secrets_batch_matches_scalar(rng):
    from repro.secagg.shamir import reconstruct_secrets_batch

    secrets = [7, 2**119 + 3, 12345678901234567890]
    n, t = 8, 5
    all_shares = [share_secret(s, n, t, rng) for s in secrets]
    xs = [2, 4, 5, 7, 8]
    recon = reconstruct_secrets_batch(
        xs, [[shares[x - 1].y for x in xs] for shares in all_shares]
    )
    assert recon == secrets
    for shares in all_shares:
        assert reconstruct_secret([shares[x - 1] for x in xs]) in secrets
    with pytest.raises(ValueError, match="share count"):
        reconstruct_secrets_batch([1, 2], [[5]])
