"""Scalar vs vectorized plane: byte-identity, boundaries, error parity.

The vectorized plane's contract is not "approximately the same sum" —
it is byte-for-byte equivalence of every observable artifact with the
scalar plane from the same rng: masked vectors, delivered shares, ring
sum, decoded total, server metrics, post-run rng position, and the
exact SecAggError on every failure path.
"""

import numpy as np
import pytest

from repro.secagg.grouped import grouped_secure_sum
from repro.secagg.masking import VectorQuantizer
from repro.secagg.protocol import (
    DropoutSchedule,
    SecAggError,
    run_secure_aggregation,
    run_secure_aggregation_transcript,
    secagg_plane,
    set_secagg_plane,
)


def quantizer(n=16):
    return VectorQuantizer(modulus_bits=32, clip_range=4.0, max_summands=n)


def make_inputs(n=12, dim=33, seed=5):
    r = np.random.default_rng(seed)
    return {100 + u: r.uniform(-3, 3, size=dim) for u in range(n)}


def run_both(inputs, threshold, dropouts, seed=2019, q=None):
    """Run each plane from a fresh identically-seeded rng; return both
    (total, metrics, transcript, rng-position probe) tuples."""
    out = {}
    for plane in ("scalar", "vectorized"):
        rng = np.random.default_rng(seed)
        total, metrics, transcript = run_secure_aggregation_transcript(
            inputs, threshold, q or quantizer(), rng, dropouts, plane=plane
        )
        out[plane] = (total, metrics, transcript, rng.bytes(8))
    return out["scalar"], out["vectorized"]


def assert_identical(scalar, vectorized):
    (t_s, m_s, tr_s, probe_s), (t_v, m_v, tr_v, probe_v) = scalar, vectorized
    assert np.array_equal(t_s, t_v)
    assert t_s.dtype == t_v.dtype
    assert m_s == m_v
    assert probe_s == probe_v  # both planes consumed the same rng draws
    assert set(tr_s.masked) == set(tr_v.masked)
    for uid in tr_s.masked:
        assert np.array_equal(tr_s.masked[uid], tr_v.masked[uid])
        assert tr_s.masked[uid].dtype == np.uint64
    assert tr_s.shares == tr_v.shares
    assert np.array_equal(tr_s.ring_sum, tr_v.ring_sum)


@pytest.mark.parametrize(
    "dropouts",
    [
        DropoutSchedule.none(),
        DropoutSchedule(after_advertise=frozenset({103, 110})),
        DropoutSchedule(after_share=frozenset({101, 105})),
        DropoutSchedule(after_mask=frozenset({102, 111})),
        DropoutSchedule(
            after_advertise=frozenset({100}),
            after_share=frozenset({104, 109}),
            after_mask=frozenset({106, 111}),
        ),
    ],
    ids=["none", "after_advertise", "after_share", "after_mask", "all_stages"],
)
def test_planes_byte_identical_across_dropout_stages(dropouts):
    scalar, vectorized = run_both(make_inputs(), threshold=7, dropouts=dropouts)
    assert_identical(scalar, vectorized)
    # and the sum is still correct
    total, metrics, _, _ = vectorized
    survivors = set(make_inputs()) - dropouts.after_advertise - dropouts.after_share
    expected = sum(v for u, v in make_inputs().items() if u in survivors)
    assert np.abs(total - expected).max() <= quantizer().max_quantization_error(12)
    assert metrics.succeeded


def test_exactly_threshold_survivors_boundary():
    """t committers remain after round 3 — the minimum that can unmask."""
    inputs = make_inputs(n=10)
    dropouts = DropoutSchedule(
        after_share=frozenset({100}),          # one dangling-mask recovery
        after_mask=frozenset({101, 109}),      # 9 committed, 7 respond = t
    )
    scalar, vectorized = run_both(inputs, threshold=7, dropouts=dropouts)
    assert_identical(scalar, vectorized)
    _, metrics, _, _ = vectorized
    assert metrics.committed == 9
    assert metrics.dropped_after_commit == 2
    assert metrics.key_agreements == 9  # 1 dropped x 9 survivors


@pytest.mark.parametrize(
    "dropouts,expected",
    [
        (
            DropoutSchedule(after_advertise=frozenset(range(100, 106))),
            "only 4 devices shared keys, threshold is 7",
        ),
        (
            DropoutSchedule(after_share=frozenset(range(100, 106))),
            "only 4 devices committed, threshold is 7",
        ),
        (
            DropoutSchedule(after_mask=frozenset(range(100, 106))),
            "only 4 devices answered unmasking, threshold is 7",
        ),
    ],
    ids=["share_keys", "commit", "unmask"],
)
def test_below_threshold_error_identical_on_both_planes(dropouts, expected):
    inputs = make_inputs(n=10)
    observed = {}
    for plane in ("scalar", "vectorized"):
        rng = np.random.default_rng(2019)
        with pytest.raises(SecAggError) as exc:
            run_secure_aggregation(
                inputs, 7, quantizer(), rng, dropouts, plane=plane
            )
        # Error message, type, and the rng position afterwards all match:
        # a fleet that catches the error and reuses the rng stays
        # deterministic regardless of plane.
        observed[plane] = (str(exc.value), rng.bytes(8))
    assert observed["scalar"] == observed["vectorized"]
    assert observed["scalar"][0] == expected


def test_grouped_secure_sum_identical_across_planes():
    inputs = make_inputs(n=40, dim=17)
    dropouts = DropoutSchedule(
        after_share=frozenset({103, 117}), after_mask=frozenset({125})
    )
    results = {}
    for plane in ("scalar", "vectorized"):
        total, metrics = grouped_secure_sum(
            inputs,
            min_group_size=12,
            threshold_fraction=0.66,
            quantizer=quantizer(n=40),
            rng=np.random.default_rng(7),
            dropouts=dropouts,
            plane=plane,
        )
        results[plane] = (total, metrics)
    t_s, m_s = results["scalar"]
    t_v, m_v = results["vectorized"]
    assert np.array_equal(t_s, t_v)
    assert m_s == m_v
    assert len(m_s) == 3


def test_plane_lever_default_and_override():
    assert secagg_plane() == "vectorized"
    previous = set_secagg_plane("scalar")
    try:
        assert previous == "vectorized"
        assert secagg_plane() == "scalar"
        # module default drives the run when plane=None
        inputs = make_inputs(n=8, dim=9)
        rng = np.random.default_rng(3)
        total_default, _ = run_secure_aggregation(inputs, 6, quantizer(), rng)
        rng = np.random.default_rng(3)
        total_scalar, _ = run_secure_aggregation(
            inputs, 6, quantizer(), rng, plane="scalar"
        )
        assert np.array_equal(total_default, total_scalar)
    finally:
        set_secagg_plane("vectorized")
    with pytest.raises(ValueError, match="secagg_plane must be one of"):
        set_secagg_plane("turbo")
    with pytest.raises(ValueError, match="secagg_plane must be one of"):
        run_secure_aggregation(
            make_inputs(n=8, dim=9), 6, quantizer(),
            np.random.default_rng(3), plane="turbo",
        )


def test_server_seconds_zero_without_timer_and_positive_with():
    ticks = iter(float(i) for i in range(100))
    inputs = make_inputs(n=8, dim=9)
    for plane in ("scalar", "vectorized"):
        _, metrics = run_secure_aggregation(
            inputs, 6, quantizer(), np.random.default_rng(3), plane=plane
        )
        assert metrics.server_seconds == 0.0
    _, metrics = run_secure_aggregation(
        inputs, 6, quantizer(), np.random.default_rng(3),
        plane="vectorized", timer=lambda: next(ticks),
    )
    assert metrics.server_seconds == 1.0  # two injected ticks, one apart


def test_vectorized_pergroup_accepted_and_identical_on_single_instance():
    """For a single instance the two vectorized planes coincide — the
    pergroup spelling only changes scheduling under grouped_secure_sum."""
    inputs = make_inputs(n=8, dim=9)
    previous = set_secagg_plane("vectorized_pergroup")
    try:
        assert previous == "vectorized"
        assert secagg_plane() == "vectorized_pergroup"
    finally:
        set_secagg_plane("vectorized")
    outs = {}
    for plane in ("vectorized", "vectorized_pergroup"):
        rng = np.random.default_rng(3)
        total, metrics = run_secure_aggregation(
            inputs, 6, quantizer(), rng, plane=plane
        )
        outs[plane] = (total, metrics, rng.bytes(8))
    assert np.array_equal(outs["vectorized"][0], outs["vectorized_pergroup"][0])
    assert outs["vectorized"][1] == outs["vectorized_pergroup"][1]
    assert outs["vectorized"][2] == outs["vectorized_pergroup"][2]


def test_phase_seconds_on_single_instance():
    inputs = make_inputs(n=8, dim=9)
    _, metrics = run_secure_aggregation(
        inputs, 6, quantizer(), np.random.default_rng(3), plane="vectorized"
    )
    assert (metrics.key_agreement_seconds, metrics.masking_seconds,
            metrics.recovery_seconds) == (0.0, 0.0, 0.0)
    ticks = iter(float(i) for i in range(100))
    _, metrics = run_secure_aggregation(
        inputs, 6, quantizer(), np.random.default_rng(3),
        plane="vectorized", timer=lambda: next(ticks),
    )
    assert metrics.key_agreement_seconds > 0.0
    assert metrics.masking_seconds > 0.0
    # Phases partition the instrumented span.
    assert (
        metrics.key_agreement_seconds
        + metrics.masking_seconds
        + metrics.recovery_seconds
    ) > 0.0
