"""Shared fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rng2() -> np.random.Generator:
    return np.random.default_rng(99)
