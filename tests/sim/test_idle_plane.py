"""Vectorized idle-plane edge cases and cross-plane compatibility."""

import numpy as np
import pytest

from repro import FLFleet
from repro.actors.kernel import Actor, ActorSystem
from repro.actors import messages as msg
from repro.analytics.events import EventLog
from repro.core.config import ClientTrainingConfig, RoundConfig, TaskConfig
from repro.core.pace import ReconnectWindow
from repro.device.actor import DeviceActor, DeviceState
from repro.device.attestation import AttestationService
from repro.device.runtime import ComputeModel, SyntheticTrainer
from repro.device.scheduler import JobSchedule
from repro.nn.models import MLPClassifier
from repro.sim.event_loop import EventLoop
from repro.sim.idle_plane import VectorizedIdlePlane
from repro.sim.network import NetworkModel
from repro.sim.population import DeviceProfile, PopulationConfig
from repro.sim.rng import RngRegistry


class StubServer(Actor):
    """Collects whatever devices send (no fast check-in screen)."""

    def __init__(self):
        self.checkins = []
        self.reports = []
        self.disconnects = []

    def receive(self, sender, message):
        if isinstance(message, msg.DeviceCheckin):
            self.checkins.append(message)
        elif isinstance(message, msg.DeviceReport):
            self.reports.append(message)
        elif isinstance(message, msg.DeviceDisconnect):
            self.disconnects.append(message)


class RejectingServer(StubServer):
    """A selector stand-in whose fast screen always bounces devices."""

    def __init__(self, window: ReconnectWindow):
        super().__init__()
        self.window = window
        self.screened = 0

    def fast_checkin_decision(self, population_name, device, attestation_ok=None):
        self.screened += 1
        return self.window


class ScriptedAvailability:
    """Deterministic eligibility: alternates on a fixed schedule."""

    def __init__(self, eligible=True, until=None, off_for=1e9, on_for=1e9):
        self._eligible = eligible
        self._until = until
        self._off_for = off_for
        self._on_for = on_for

    def is_initially_eligible(self, wall_time_s):
        return self._eligible

    def time_until_ineligible(self, wall_time_s, fast=False):
        if self._until is not None:
            return max(self._until - wall_time_s, 0.001)
        return self._on_for

    def time_until_eligible(self, wall_time_s, fast=False):
        return self._off_for


@pytest.fixture
def harness():
    loop = EventLoop()
    rngs = RngRegistry(0)
    system = ActorSystem(loop, rngs.stream("lat"), mean_latency_s=0.001)
    plane = VectorizedIdlePlane(loop, capacity=4)
    server = StubServer()
    server_ref = system.spawn(server, "stub")
    return loop, system, plane, server, server_ref, rngs


def make_device(
    system, plane, server_ref, availability, rngs, memberships=("pop",), **kwargs
):
    profile = DeviceProfile(
        device_id=len(plane), tz_offset_hours=0.0, speed_factor=1.0,
        memory_mb=4096, os_version=28, runtime_version=10, genuine=True,
    )
    network = NetworkModel(transfer_failure_prob=0.0)
    rng = rngs.stream(f"dev/{profile.device_id}")
    device = DeviceActor(
        profile=profile,
        availability=availability,
        network=network,
        conditions=network.sample_conditions(rng),
        selectors=[server_ref],
        memberships=memberships,
        trainers={name: SyntheticTrainer(num_parameters=10) for name in memberships},
        compute=ComputeModel(examples_per_second=100.0, setup_overhead_s=1.0),
        attestation=AttestationService(),
        event_log=EventLog(),
        rng=rng,
        job=JobSchedule(600.0, 0.1),
        compute_error_prob=0.0,
        **kwargs,
    )
    plane.adopt(device)
    system.spawn(device, profile.name)
    return device


def test_flip_to_ineligible_exactly_at_sweep_boundary_suppresses_checkin(harness):
    loop, system, plane, server, server_ref, rngs = harness
    plane.sweep_interval_s = 15.0
    boundary = 600.0  # a multiple of the sweep interval
    device = make_device(
        system, plane, server_ref,
        ScriptedAvailability(eligible=True, until=boundary), rngs,
    )
    # Force the check-in due time onto the same boundary as the flip.
    device.idle.schedule_checkin(boundary - loop.now)
    loop.run(until=boundary + 60.0)
    # The flip is processed first within the sweep: the device went
    # ineligible at the boundary, so the simultaneous check-in never fires.
    assert server.checkins == []
    assert device.state is DeviceState.SLEEPING
    assert not plane.eligible[0]
    assert plane.next_checkin_t[0] == float("inf")
    assert plane.flips >= 1 and plane.checkins_dispatched == 0


def test_zero_membership_device_never_checks_in_but_keeps_flipping(harness):
    loop, system, plane, server, server_ref, rngs = harness
    device = make_device(
        system, plane, server_ref,
        ScriptedAvailability(eligible=True, on_for=300.0, off_for=300.0),
        rngs, memberships=(),
    )
    loop.run(until=3000.0)
    assert plane.flips >= 8           # kept flipping on the 300s schedule
    assert plane.checkins_dispatched == 0
    assert server.checkins == []
    assert plane.next_checkin_t[0] == float("inf")
    assert device.state in (DeviceState.IDLE, DeviceState.SLEEPING)


def make_configure(round_id, agg_ref):
    from repro.core.checkpoint import FLCheckpoint
    from repro.core.config import SecAggConfig, TaskKind
    from repro.core.plan import generate_plan
    from repro.nn.models import LogisticRegression

    plan = generate_plan(
        task_id="t", kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(), secagg=SecAggConfig(),
        model_nbytes=100,
    )
    model = LogisticRegression(input_dim=2, n_classes=2)
    ckpt = FLCheckpoint.from_params(
        model.init(np.random.default_rng(0)), "pop", "t", 0
    )
    return msg.ConfigureDevice(
        round_id=round_id, task_id="t", plan=plan, checkpoint=ckpt,
        aggregator=agg_ref, report_deadline_s=1e9, participation_cap_s=600.0,
    )


def test_stale_waiting_timer_does_not_break_rematerialized_device(harness):
    loop, system, plane, server, server_ref, rngs = harness
    device = make_device(
        system, plane, server_ref, ScriptedAvailability(eligible=True), rngs,
    )
    loop.run(until=700.0)
    assert device.state is DeviceState.WAITING
    first_epoch = device._wait_epoch
    # Run a full session so the device hands itself back to the plane...
    system.tell(device.ref, make_configure(5, server_ref))
    while not server.reports and loop.now < 5000.0:
        loop.run(until=loop.now + 5.0)
    system.tell(device.ref, msg.ReportAck(round_id=5, accepted=True))
    loop.run(until=loop.now + 10.0)
    assert device.rounds_completed == 1
    # ... then re-materialize promptly.
    device.idle.schedule_checkin(1.0)
    loop.run(until=loop.now + 120.0)
    assert device.state is DeviceState.WAITING
    assert plane.active[0]
    # A stale timer from the first session fires with the old epoch: it
    # must not tear down the new session.
    device._on_waiting_timeout(first_epoch)
    assert device.state is DeviceState.WAITING
    assert plane.active[0]
    assert server.disconnects == []
    assert device.scheduler.running == "pop"


def test_fast_rejected_device_never_materializes(harness):
    loop, system, plane, server, _ref, rngs = harness
    window = ReconnectWindow(5000.0, 5100.0)
    rejecting = RejectingServer(window)
    rejecting_ref = system.spawn(rejecting, "rejecting")
    device = make_device(
        system, plane, rejecting_ref, ScriptedAvailability(eligible=True), rngs,
    )
    loop.run(until=700.0)
    assert rejecting.screened == 1
    assert rejecting.checkins == []          # no stream was ever opened
    assert device.state is DeviceState.IDLE  # never left the plane
    assert not plane.active[0]
    assert plane.checkins_fast_rejected == 1
    assert device.health.checkins == 1       # the attempt still counts
    # The pace window gates the retry.
    assert 5000.0 <= plane.next_checkin_t[0] <= 5101.0
    assert plane.pending_window_t[0] >= 5000.0


# ---------------------------------------------------------------------------
# fleet-level: cross-plane compatibility and determinism


def build_fleet(plane: str, seed: int = 11, devices: int = 200):
    model = MLPClassifier(input_dim=8, hidden_dims=(16,), n_classes=4)
    params = model.init(np.random.default_rng(0))
    task = TaskConfig(
        task_id="t",
        population_name="pop",
        round_config=RoundConfig(target_participants=15),
        client_config=ClientTrainingConfig(epochs=1, batch_size=8),
    )
    return (
        FLFleet.builder()
        .seed(seed)
        .devices(PopulationConfig(num_devices=devices))
        .idle_plane(plane)
        .population("pop", tasks=[task], model=params)
        .build()
    )


def test_cross_plane_round_completion_rates_compatible():
    """Vectorized and actor planes are different discretisations of the
    same fleet dynamics: same seed, statistically compatible throughput."""
    reports = {}
    for plane in ("vectorized", "actor"):
        fleet = build_fleet(plane)
        fleet.run_days(0.3)
        reports[plane] = fleet.report()
    vec, act = reports["vectorized"], reports["actor"]
    assert vec.rounds_committed >= 1 and act.rounds_committed >= 1
    assert 0.5 <= vec.rounds_committed / act.rounds_committed <= 2.0
    vec_sessions = sum(p.device_sessions for p in vec.populations)
    act_sessions = sum(p.device_sessions for p in act.populations)
    assert 0.5 <= vec_sessions / act_sessions <= 2.0
    # Round health is comparable too, not just volume.
    assert abs(vec.mean_drop_rate - act.mean_drop_rate) < 0.25


def test_vectorized_plane_is_deterministic():
    runs = []
    for _ in range(2):
        fleet = build_fleet("vectorized", seed=7, devices=150)
        fleet.run_days(0.15)
        runs.append(
            (fleet.report().to_operational_dict(),
             fleet.health_report().to_dict())
        )
    assert runs[0] == runs[1]


def test_plane_state_counts_match_device_states():
    fleet = build_fleet("vectorized", seed=3, devices=120)
    fleet.run_days(0.07)
    counts = fleet.idle_plane.state_counts()
    truth = {state: 0 for state in DeviceState}
    for device in fleet.devices:
        truth[device.state] += 1
    assert counts == truth
    assert sum(counts.values()) == 120
