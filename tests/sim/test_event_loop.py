"""Event loop: ordering, cancellation, time semantics."""

import pytest

from repro.sim.event_loop import EventLoop, SimulationError


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(5.0, fired.append, "b")
    loop.schedule(1.0, fired.append, "a")
    loop.schedule(9.0, fired.append, "c")
    loop.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(1.0, fired.append, i)
    loop.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    loop = EventLoop(start_time=100.0)
    seen = []
    loop.schedule(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [102.5]
    assert loop.now == 102.5


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    loop = EventLoop(start_time=50.0)
    with pytest.raises(SimulationError):
        loop.schedule_at(49.9, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, fired.append, "x")
    loop.schedule(2.0, fired.append, "y")
    event.cancel()
    loop.run()
    assert fired == ["y"]


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "a")
    loop.schedule(10.0, fired.append, "b")
    loop.run(until=5.0)
    assert fired == ["a"]
    assert loop.now == 5.0  # clock advances to the horizon
    loop.run()
    assert fired == ["a", "b"]


def test_run_for_relative_horizon():
    loop = EventLoop(start_time=100.0)
    fired = []
    loop.schedule(3.0, fired.append, 1)
    loop.schedule(30.0, fired.append, 2)
    loop.run_for(5.0)
    assert fired == [1]
    assert loop.now == 105.0


def test_events_scheduled_during_run_are_processed():
    loop = EventLoop()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            loop.schedule(1.0, chain, n + 1)

    loop.schedule(0.0, chain, 0)
    loop.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert loop.now == 5.0


def test_max_events_bound():
    loop = EventLoop()
    for _ in range(100):
        loop.schedule(1.0, lambda: None)
    processed = loop.run(max_events=7)
    assert processed == 7
    assert len(loop) == 93


def test_len_excludes_cancelled():
    loop = EventLoop()
    e1 = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    e1.cancel()
    assert len(loop) == 1


def test_cancel_after_fire_is_harmless():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    loop.run()
    event.cancel()   # fired long ago; must not corrupt the live count
    event.cancel()   # idempotent
    assert len(loop) == 0


def test_mass_cancellation_compacts_heap():
    """Cancelled events must not linger until their fire time: once they
    are the majority, the heap is compacted in place."""
    loop = EventLoop()
    keep = [loop.schedule(1e6 + i, lambda: None) for i in range(10)]
    doomed = [loop.schedule(2e6 + i, lambda: None) for i in range(1000)]
    assert loop.heap_size == 1010
    for event in doomed:
        event.cancel()
    assert len(loop) == 10          # O(1) live count
    # Corpses were dropped without being popped; only a sub-floor residue
    # (heaps smaller than the compaction minimum) may remain.
    assert loop.heap_size < 64
    del keep


def test_compaction_preserves_firing_order():
    loop = EventLoop()
    fired = []
    events = []
    for i in range(300):
        events.append(loop.schedule(float(i % 7) + 1.0, fired.append, i))
    cancelled = {i for i in range(300) if i % 3 != 0}
    for i in cancelled:
        events[i].cancel()
    loop.run()
    survivors = [i for i in range(300) if i not in cancelled]
    expected = sorted(survivors, key=lambda i: (float(i % 7) + 1.0, i))
    assert fired == expected


def test_small_heaps_are_not_compacted():
    loop = EventLoop()
    events = [loop.schedule(float(i) + 1.0, lambda: None) for i in range(10)]
    for event in events[:8]:
        event.cancel()
    assert len(loop) == 2
    assert loop.heap_size == 10  # below the compaction floor: left in place
    loop.run()
    assert len(loop) == 0 and loop.heap_size == 0


def test_cancel_during_run_keeps_count_consistent():
    loop = EventLoop()
    later = [loop.schedule(5.0 + i, lambda: None) for i in range(200)]

    def cancel_most():
        for event in later[:150]:
            event.cancel()

    loop.schedule(1.0, cancel_most)
    processed = loop.run()
    assert processed == 1 + 50
    assert len(loop) == 0


def test_events_processed_excludes_cancelled():
    loop = EventLoop()
    a = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    a.cancel()
    loop.run()
    assert loop.events_processed == 1


# ---------------------------------------------------------------------------
# Sweeper: one heap entry per batched consumer


def test_sweeper_keeps_only_earliest_wakeup():
    from repro.sim.event_loop import Sweeper

    loop = EventLoop()
    fired = []
    sweeper = Sweeper(loop, lambda: fired.append(loop.now))
    sweeper.arm(50.0)
    sweeper.arm(100.0)   # later: free no-op, the 50.0 wake-up stands
    assert sweeper.armed_at == 50.0
    sweeper.arm(10.0)    # earlier: replaces the pending entry
    assert sweeper.armed_at == 10.0
    assert len(loop) == 1  # never more than one live entry
    loop.run()
    assert fired == [10.0]


def test_sweeper_rearms_after_fire_and_disarms():
    from repro.sim.event_loop import Sweeper

    loop = EventLoop()
    fired = []

    def on_sweep():
        fired.append(loop.now)
        if len(fired) < 3:
            sweeper.arm(loop.now + 5.0)

    sweeper = Sweeper(loop, on_sweep)
    sweeper.arm(5.0)
    loop.run()
    assert fired == [5.0, 10.0, 15.0]
    assert sweeper.armed_at == float("inf")
    sweeper.arm(100.0)
    sweeper.disarm()
    loop.run()
    assert fired == [5.0, 10.0, 15.0]


def test_sweeper_never_arms_into_the_past():
    from repro.sim.event_loop import Sweeper

    loop = EventLoop()
    loop.schedule(10.0, lambda: None)
    loop.run()
    fired = []
    sweeper = Sweeper(loop, lambda: fired.append(loop.now))
    sweeper.arm(3.0)  # in the past: clamped to now
    loop.run()
    assert fired == [10.0]
