"""Diurnal model: the 4x availability swing and hazard consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.diurnal import AvailabilityProcess, DiurnalModel
from repro.sim.event_loop import SECONDS_PER_DAY, SECONDS_PER_HOUR


def test_peak_to_trough_ratio_is_4x():
    model = DiurnalModel(amplitude=0.6)
    hours = np.linspace(0, 24, 1000)
    fractions = [model.eligible_fraction(h * SECONDS_PER_HOUR) for h in hours]
    assert max(fractions) / min(fractions) == pytest.approx(4.0, rel=1e-3)


def test_peak_is_at_peak_hour():
    model = DiurnalModel(peak_hour=2.0)
    at_peak = model.eligible_fraction(2.0 * SECONDS_PER_HOUR)
    at_trough = model.eligible_fraction(14.0 * SECONDS_PER_HOUR)
    assert at_peak > at_trough
    hours = np.arange(0, 24, 0.25)
    best = hours[np.argmax([model.eligible_fraction(h * 3600) for h in hours])]
    assert best == pytest.approx(2.0, abs=0.25)


def test_rate_off_is_higher_during_the_day():
    """Fig. 7: drop-out is higher in daytime (users pick up their phones)."""
    model = DiurnalModel(peak_hour=2.0)
    assert model.rate_off(14 * SECONDS_PER_HOUR) > model.rate_off(2 * SECONDS_PER_HOUR)


def test_stationary_fraction_matches_hazard_ratio():
    model = DiurnalModel()
    for hour in (0, 6, 12, 18):
        t = hour * SECONDS_PER_HOUR
        on, off = model.rate_on(t), model.rate_off(t)
        stationary = on / (on + off)
        assert stationary == pytest.approx(
            min(model.eligible_fraction(t), 0.97), rel=1e-9
        )


@given(st.floats(min_value=0.0, max_value=7 * SECONDS_PER_DAY))
@settings(max_examples=50, deadline=None)
def test_modulation_stays_in_band(t):
    model = DiurnalModel(amplitude=0.6)
    assert 0.4 - 1e-9 <= model.modulation(t) <= 1.6 + 1e-9


def test_availability_process_transitions_positive(rng):
    process = AvailabilityProcess(DiurnalModel(), tz_offset_hours=-8.0, rng=rng)
    for t in (0.0, 40_000.0, 80_000.0):
        assert process.time_until_eligible(t) > 0
        assert process.time_until_ineligible(t) > 0


def test_eligible_durations_average_near_configured_mean(rng):
    model = DiurnalModel(mean_eligible_minutes=45.0, amplitude=0.6)
    process = AvailabilityProcess(model, tz_offset_hours=0.0, rng=rng)
    # At the availability peak the off-hazard is lowest; sample many
    # durations across the day and compare to the configured scale.
    samples = [
        process.time_until_ineligible(t)
        for t in np.linspace(0, SECONDS_PER_DAY, 400)
    ]
    mean_minutes = np.mean(samples) / 60.0
    assert 25.0 < mean_minutes < 80.0


def test_more_devices_eligible_at_night(rng):
    model = DiurnalModel(peak_hour=2.0)
    process = AvailabilityProcess(model, tz_offset_hours=0.0, rng=rng)
    night = 2 * SECONDS_PER_HOUR
    day = 14 * SECONDS_PER_HOUR
    night_count = sum(
        process.is_initially_eligible(night) for _ in range(2000)
    )
    day_count = sum(process.is_initially_eligible(day) for _ in range(2000))
    assert night_count > 2.0 * day_count


def test_tabulated_sampler_matches_thinning_in_distribution(rng):
    """The idle plane's fast sampler draws from the same law as thinning
    (up to the per-minute hazard discretisation): compare mean delays
    from many samples at several times of day, both transitions."""
    model = DiurnalModel()
    for attr in ("time_until_ineligible", "time_until_eligible"):
        for t0 in (0.0, 6 * SECONDS_PER_HOUR, 15 * SECONDS_PER_HOUR):
            slow_p = AvailabilityProcess(
                model, tz_offset_hours=-8.0, rng=np.random.default_rng(1)
            )
            fast_p = AvailabilityProcess(
                model, tz_offset_hours=-8.0, rng=np.random.default_rng(2)
            )
            slow = np.mean([getattr(slow_p, attr)(t0) for _ in range(1500)])
            fast = np.mean(
                [getattr(fast_p, attr)(t0, fast=True) for _ in range(1500)]
            )
            assert 0.85 < fast / slow < 1.18, (attr, t0, slow, fast)


def test_tabulated_sampler_is_strictly_positive_and_deterministic(rng):
    process = AvailabilityProcess(DiurnalModel(), tz_offset_hours=3.0, rng=rng)
    for t in (0.0, 12_345.0, 5 * SECONDS_PER_DAY + 17.0):
        assert process.time_until_eligible(t, fast=True) > 0
        assert process.time_until_ineligible(t, fast=True) > 0
    a = AvailabilityProcess(
        DiurnalModel(), tz_offset_hours=3.0, rng=np.random.default_rng(9)
    )
    b = AvailabilityProcess(
        DiurnalModel(), tz_offset_hours=3.0, rng=np.random.default_rng(9)
    )
    draws_a = [a.time_until_eligible(float(t), fast=True) for t in range(5)]
    draws_b = [b.time_until_eligible(float(t), fast=True) for t in range(5)]
    assert draws_a == draws_b
