"""Population sampling: validation, determinism, constraint ranges."""

import numpy as np
import pytest

from repro.sim.population import PopulationConfig, build_population
from repro.sim.rng import RngRegistry


def test_population_size_and_ids():
    pop = build_population(PopulationConfig(num_devices=50), RngRegistry(0))
    assert len(pop) == 50
    assert [p.device_id for p in pop] == list(range(50))


def test_population_is_deterministic():
    a = build_population(PopulationConfig(num_devices=20), RngRegistry(42))
    b = build_population(PopulationConfig(num_devices=20), RngRegistry(42))
    assert a == b


def test_fields_within_configured_choices():
    config = PopulationConfig(num_devices=300)
    pop = build_population(config, RngRegistry(1))
    for p in pop:
        assert p.memory_mb in config.memory_choices
        assert p.os_version in config.os_versions
        assert p.runtime_version in config.runtime_versions
        assert p.speed_factor > 0


def test_compromised_fraction_roughly_respected():
    config = PopulationConfig(num_devices=5000, compromised_fraction=0.1)
    pop = build_population(config, RngRegistry(2))
    frac = sum(not p.genuine for p in pop) / len(pop)
    assert 0.07 < frac < 0.13


def test_timezones_center_on_configured_offset():
    config = PopulationConfig(
        num_devices=1000, tz_offset_hours=-8.0, tz_spread_hours=1.0
    )
    pop = build_population(config, RngRegistry(3))
    mean_tz = np.mean([p.tz_offset_hours for p in pop])
    assert -8.3 < mean_tz < -7.7


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_devices": 0},
        {"memory_weights": (0.5, 0.5, 0.5, 0.2, 0.2)},
        {"compromised_fraction": 1.5},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        build_population(PopulationConfig(**kwargs), RngRegistry(0))
