"""Named RNG streams: determinism and independence."""

import numpy as np

from repro.sim.rng import RngRegistry


def test_same_name_same_seed_is_deterministic():
    a = RngRegistry(seed=7).fresh("device/1").random(10)
    b = RngRegistry(seed=7).fresh("device/1").random(10)
    np.testing.assert_array_equal(a, b)


def test_different_names_are_independent():
    reg = RngRegistry(seed=7)
    a = reg.fresh("alpha").random(100)
    b = reg.fresh("beta").random(100)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).fresh("x").random(10)
    b = RngRegistry(seed=2).fresh("x").random(10)
    assert not np.allclose(a, b)


def test_stream_is_cached_fresh_is_not():
    reg = RngRegistry(seed=0)
    s1 = reg.stream("s")
    s1.random(5)  # advance
    s2 = reg.stream("s")
    assert s1 is s2  # same underlying generator
    f1 = reg.fresh("s")
    f2 = reg.fresh("s")
    np.testing.assert_array_equal(f1.random(5), f2.random(5))


def test_spawn_children_are_mutually_independent():
    children = RngRegistry(seed=3).spawn("workers", 4)
    draws = [c.random(50) for c in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.allclose(draws[i], draws[j])


def test_adding_stream_does_not_perturb_existing():
    reg1 = RngRegistry(seed=5)
    a_before = reg1.fresh("a").random(10)
    reg2 = RngRegistry(seed=5)
    reg2.fresh("b")  # extra stream created first
    a_after = reg2.fresh("a").random(10)
    np.testing.assert_array_equal(a_before, a_after)
