"""Network model: transfer times, failures, and the traffic meter."""

import numpy as np
import pytest

from repro.sim.network import (
    NetworkConditions,
    NetworkModel,
    TrafficMeter,
    TransferDirection,
)


def test_transfer_time_includes_rtt_and_bandwidth():
    cond = NetworkConditions(
        downlink_bytes_per_s=1e6, uplink_bytes_per_s=1e5, rtt_s=0.1
    )
    assert cond.transfer_time(1_000_000, TransferDirection.DOWNLOAD) == pytest.approx(
        1.1
    )
    assert cond.transfer_time(1_000_000, TransferDirection.UPLOAD) == pytest.approx(
        10.1
    )


def test_meter_buckets_by_direction():
    meter = TrafficMeter()
    meter.record(100, TransferDirection.DOWNLOAD)
    meter.record(40, TransferDirection.UPLOAD)
    meter.record(60, TransferDirection.DOWNLOAD)
    assert meter.downloaded_bytes == 160
    assert meter.uploaded_bytes == 40
    assert meter.download_count == 2
    assert meter.upload_count == 1
    assert meter.download_upload_ratio == pytest.approx(4.0)


def test_ratio_with_zero_upload():
    meter = TrafficMeter()
    assert meter.download_upload_ratio == 0.0
    meter.record(10, TransferDirection.DOWNLOAD)
    assert meter.download_upload_ratio == float("inf")


def test_successful_transfer_is_metered(rng):
    model = NetworkModel(transfer_failure_prob=0.0)
    cond = model.sample_conditions(rng)
    duration, ok = model.transfer(cond, 1000, TransferDirection.UPLOAD, rng)
    assert ok
    assert duration > 0
    assert model.meter.uploaded_bytes == 1000


def test_failed_transfer_counts_failure_not_bytes(rng):
    model = NetworkModel(transfer_failure_prob=1.0)
    cond = model.sample_conditions(rng)
    duration, ok = model.transfer(cond, 1000, TransferDirection.DOWNLOAD, rng)
    assert not ok
    assert duration > 0
    assert model.meter.downloaded_bytes == 0
    assert model.meter.failed_transfers == 1


def test_failure_rate_matches_probability(rng):
    model = NetworkModel(transfer_failure_prob=0.2)
    cond = model.sample_conditions(rng)
    failures = sum(
        not model.transfer(cond, 10, TransferDirection.UPLOAD, rng)[1]
        for _ in range(5000)
    )
    assert 0.15 < failures / 5000 < 0.25


def test_sampled_conditions_are_heterogeneous(rng):
    model = NetworkModel()
    downs = [model.sample_conditions(rng).downlink_bytes_per_s for _ in range(200)]
    assert np.std(downs) > 0
    assert min(downs) > 0
    # Log-normal: median near the configured median.
    assert 0.5 * model.median_downlink_bytes_per_s < np.median(downs) < 2.0 * (
        model.median_downlink_bytes_per_s
    )


def test_batch_sampler_shapes_and_positivity():
    model = NetworkModel()
    conditions = model.sample_conditions_batch(200, np.random.default_rng(5))
    assert len(conditions) == 200
    for cond in conditions:
        assert cond.downlink_bytes_per_s > 0
        assert cond.uplink_bytes_per_s > 0
        assert cond.rtt_s > 0
    # log-normal heterogeneity: a real spread, not a constant
    downs = np.array([c.downlink_bytes_per_s for c in conditions])
    assert downs.std() > 0
    with pytest.raises(ValueError):
        model.sample_conditions_batch(0, np.random.default_rng(5))


def test_scalar_sampler_delegates_to_batch():
    """sample_conditions(rng) must be stream-compatible with
    sample_conditions_batch(1, rng): same draws, same values."""
    model = NetworkModel()
    a = model.sample_conditions(np.random.default_rng(9))
    b = model.sample_conditions_batch(1, np.random.default_rng(9))[0]
    assert a == b
    # and the stream positions agree afterwards
    rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
    model.sample_conditions(rng_a)
    model.sample_conditions_batch(1, rng_b)
    assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)


def test_batch_sampler_median_scales():
    fast = NetworkModel(median_downlink_bytes_per_s=1e9, bandwidth_sigma=0.0)
    conditions = fast.sample_conditions_batch(8, np.random.default_rng(1))
    for cond in conditions:
        assert cond.downlink_bytes_per_s == pytest.approx(1e9)
