"""Eligibility policy semantics."""

import numpy as np

from repro.device.eligibility import (
    DeviceConditions,
    EligibilityPolicy,
    sample_conditions,
)


def test_all_conditions_required_by_default():
    policy = EligibilityPolicy()
    assert policy.is_eligible(DeviceConditions(True, True, True))
    assert not policy.is_eligible(DeviceConditions(False, True, True))
    assert not policy.is_eligible(DeviceConditions(True, False, True))
    assert not policy.is_eligible(DeviceConditions(True, True, False))


def test_requirements_can_be_relaxed():
    policy = EligibilityPolicy(require_unmetered=False)
    assert policy.is_eligible(DeviceConditions(True, True, False))


def test_device_support_gate():
    """Sec. 11: 'currently with recent Android versions and at least 2 GB'."""
    policy = EligibilityPolicy()
    assert policy.device_supported(memory_mb=2048, os_version=26)
    assert not policy.device_supported(memory_mb=1024, os_version=28)
    assert not policy.device_supported(memory_mb=4096, os_version=23)


def test_sampled_conditions_consistent_with_eligibility(rng):
    policy = EligibilityPolicy()
    for _ in range(50):
        eligible = sample_conditions(True, rng)
        assert policy.is_eligible(eligible)
        ineligible = sample_conditions(False, rng)
        assert not policy.is_eligible(ineligible)


def test_summary_string():
    assert DeviceConditions(True, True, True).summary == "idle+charging+unmetered"
    assert DeviceConditions(False, False, False).summary == "none"
