"""On-device trainers: the plan execution path."""

import numpy as np
import pytest

from repro.core.config import ClientTrainingConfig, SecAggConfig, TaskKind
from repro.core.checkpoint import FLCheckpoint
from repro.core.plan import generate_plan
from repro.device.example_store import ExampleStore
from repro.device.runtime import ComputeModel, RealTrainer, SyntheticTrainer
from repro.nn.models import LogisticRegression
from repro.nn.serialization import checkpoint_nbytes


def make_plan(epochs=1, batch_size=8):
    return generate_plan(
        task_id="t",
        kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(epochs=epochs, batch_size=batch_size),
        secagg=SecAggConfig(),
        model_nbytes=100,
    )


def make_checkpoint(model, rng):
    params = model.init(rng)
    return FLCheckpoint.from_params(params, "pop", "t", 0), params


def test_real_trainer_executes_plan(rng):
    model = LogisticRegression(input_dim=3, n_classes=2)
    store = ExampleStore(ttl_s=None)
    for i in range(30):
        store.add(rng.normal(size=3), int(rng.integers(2)), float(i))
    checkpoint, params = make_checkpoint(model, rng)
    trainer = RealTrainer(model=model, store=store)
    result = trainer.train(make_plan(), checkpoint, now_s=100.0, rng=rng)
    assert result.num_examples == 24  # 30 minus 20% holdout
    assert result.weight == 24
    assert result.delta_vector.shape[0] == params.num_parameters
    assert np.any(result.delta_vector != 0)
    assert result.upload_nbytes == params.num_parameters * 8
    assert "loss" in result.metrics


def test_real_trainer_compression_shrinks_upload(rng):
    model = LogisticRegression(input_dim=3, n_classes=2)
    store = ExampleStore(ttl_s=None)
    for i in range(10):
        store.add(rng.normal(size=3), 0, float(i))
    checkpoint, params = make_checkpoint(model, rng)
    trainer = RealTrainer(model=model, store=store, update_compression_ratio=4.0)
    result = trainer.train(make_plan(), checkpoint, 100.0, rng)
    assert result.upload_nbytes == params.num_parameters * 8 // 4


def test_real_trainer_empty_store_raises(rng):
    model = LogisticRegression(input_dim=3, n_classes=2)
    trainer = RealTrainer(model=model, store=ExampleStore())
    checkpoint, _ = make_checkpoint(model, rng)
    with pytest.raises(RuntimeError, match="no data"):
        trainer.train(make_plan(), checkpoint, 0.0, rng)


def test_synthetic_trainer_shapes(rng):
    model = LogisticRegression(input_dim=5, n_classes=3)
    checkpoint, params = make_checkpoint(model, rng)
    trainer = SyntheticTrainer(num_parameters=params.num_parameters)
    result = trainer.train(make_plan(epochs=2), checkpoint, 0.0, rng)
    assert result.delta_vector.shape[0] == params.num_parameters
    assert result.num_examples >= 1
    assert result.train_compute_units == result.num_examples * 2


def test_synthetic_trainer_respects_plan_cap(rng):
    trainer = SyntheticTrainer(num_parameters=10, mean_examples=1e9)
    plan = generate_plan(
        task_id="t",
        kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(max_examples=50),
        secagg=SecAggConfig(),
        model_nbytes=10,
    )
    model = LogisticRegression(input_dim=2, n_classes=2)
    checkpoint, _ = make_checkpoint(model, rng)
    result = trainer.train(plan, checkpoint, 0.0, rng)
    assert result.num_examples <= 50


def test_compute_model_scales_with_speed():
    compute = ComputeModel(examples_per_second=100.0, setup_overhead_s=1.0)
    slow = compute.train_time_s(compute_units=200.0, speed_factor=0.5)
    fast = compute.train_time_s(compute_units=200.0, speed_factor=2.0)
    assert slow == pytest.approx(1.0 + 4.0)
    assert fast == pytest.approx(1.0 + 1.0)
    with pytest.raises(ValueError):
        compute.train_time_s(10.0, 0.0)
