"""CohortExecutionPlane: deferred workloads, grouping, and trainer wiring."""

import numpy as np
import pytest

from repro.core.checkpoint import FLCheckpoint
from repro.core.config import ClientTrainingConfig, SecAggConfig, TaskKind
from repro.core.datasets import ClientDataset
from repro.core.plan import generate_plan
from repro.device.cohort import CohortExecutionPlane
from repro.device.example_store import ExampleStore
from repro.device.runtime import PendingTrainResult, RealTrainer
from repro.nn.models import MLPClassifier
from repro.nn.parameters import functional_math

MODEL = MLPClassifier(input_dim=6, hidden_dims=(5,), n_classes=3)
CONFIG = ClientTrainingConfig(epochs=2, batch_size=4, learning_rate=0.1)


def make_dataset(i, n=12, seed=3):
    rng = np.random.default_rng(seed + i)
    return ClientDataset(
        f"c{i}", rng.normal(size=(n, 6)), rng.integers(0, 3, size=n)
    )


def make_plan(kind=TaskKind.TRAINING):
    return generate_plan(
        task_id="t", kind=kind, client_config=CONFIG,
        secagg=SecAggConfig(), model_nbytes=64,
    )


def make_store(i, n=12, seed=3):
    d = make_dataset(i, n, seed)
    store = ExampleStore(ttl_s=None)
    store.add_batch(d.x, d.y, timestamp_s=0.0)
    return store


@pytest.fixture
def params():
    return MODEL.init(np.random.default_rng(1))


def test_enqueue_defers_and_resolve_executes(params):
    plane = CohortExecutionPlane(MODEL)
    handles = [
        plane.enqueue(make_dataset(i), params, CONFIG,
                      np.random.default_rng(10 + i), round_key=("pop", "t", 1))
        for i in range(4)
    ]
    assert plane.pending_count == 4
    assert plane.executions == 0
    assert all(h.num_examples == 12 and h.weight == 12.0 for h in handles)
    part = handles[2].resolve()          # first demand executes everyone
    assert plane.executions == 1
    assert plane.pending_count == 0
    assert plane.workloads_executed == 4
    assert plane.largest_cohort == 4
    assert part.steps == 6               # 2 epochs x 12/4
    # remaining handles resolve without another execution
    others = [h.resolve() for h in handles]
    assert plane.executions == 1
    assert all(p.num_examples == 12 for p in others)


def test_slices_are_rows_of_one_matrix(params):
    plane = CohortExecutionPlane(MODEL)
    handles = [
        plane.enqueue(make_dataset(i), params, CONFIG,
                      np.random.default_rng(20 + i), round_key=("pop", "t", 1))
        for i in range(3)
    ]
    parts = [h.resolve() for h in handles]
    bases = {id(p.delta_vector.base) for p in parts}
    assert len(bases) == 1 and None not in bases


def test_batching_does_not_change_numbers(params):
    """A workload's numbers are pinned at enqueue: executing it alone or
    with company yields the identical delta."""
    plane_a = CohortExecutionPlane(MODEL)
    solo = plane_a.enqueue(make_dataset(0), params, CONFIG,
                           np.random.default_rng(30), ("pop", "t", 1))
    solo_part = solo.resolve()

    plane_b = CohortExecutionPlane(MODEL)
    together = [
        plane_b.enqueue(make_dataset(i), params, CONFIG,
                        np.random.default_rng(30 + i), ("pop", "t", 1))
        for i in range(5)
    ]
    batched_part = together[0].resolve()
    assert np.array_equal(solo_part.delta_vector, batched_part.delta_vector)
    assert solo_part.mean_loss == batched_part.mean_loss


def test_groups_by_round_key_not_object_identity(params):
    """Two devices deserialize their own (equal) checkpoints; the plane
    must group them by round key and train both against one global."""
    plane = CohortExecutionPlane(MODEL)
    params_copy = params.copy()
    a = plane.enqueue(make_dataset(0), params, CONFIG,
                      np.random.default_rng(40), ("pop", "t", 7))
    b = plane.enqueue(make_dataset(1), params_copy, CONFIG,
                      np.random.default_rng(41), ("pop", "t", 7))
    a.resolve()
    assert plane.executions == 1         # one group, one tensor program
    assert b.executed


def test_distinct_rounds_execute_separately(params):
    plane = CohortExecutionPlane(MODEL)
    other_params = MODEL.init(np.random.default_rng(2))
    a = plane.enqueue(make_dataset(0), params, CONFIG,
                      np.random.default_rng(50), ("pop", "t", 1))
    b = plane.enqueue(make_dataset(1), other_params, CONFIG,
                      np.random.default_rng(51), ("pop", "t", 2))
    a.resolve()
    assert plane.executions == 2         # one per (round, config) group
    assert b.executed


def test_cancel_withdraws_unexecuted_workload(params):
    plane = CohortExecutionPlane(MODEL)
    doomed = plane.enqueue(make_dataset(0), params, CONFIG,
                           np.random.default_rng(60), ("pop", "t", 1))
    kept = plane.enqueue(make_dataset(1), params, CONFIG,
                         np.random.default_rng(61), ("pop", "t", 1))
    doomed.cancel()
    assert plane.pending_count == 1
    kept.resolve()
    assert plane.workloads_executed == 1
    with pytest.raises(RuntimeError, match="cancelled"):
        doomed.resolve()


def test_failed_group_fails_members_individually_not_others(params):
    """One bad workload fails its whole group per-device (each resolve
    raises), but other groups still execute."""
    plane = CohortExecutionPlane(MODEL)
    bad_data = ClientDataset(
        "bad", np.random.default_rng(0).normal(size=(12, 9)),  # wrong dim
        np.random.default_rng(0).integers(0, 3, size=12),
    )
    doomed_a = plane.enqueue(bad_data, params, CONFIG,
                             np.random.default_rng(90), ("pop", "t", 1))
    doomed_b = plane.enqueue(make_dataset(1), params, CONFIG,
                             np.random.default_rng(91), ("pop", "t", 1))
    fine = plane.enqueue(make_dataset(2), params, CONFIG,
                         np.random.default_rng(92), ("pop", "t", 2))
    part = fine.resolve()                 # other group unaffected
    assert part.num_examples == 12
    with pytest.raises(RuntimeError, match="cohort execution failed"):
        doomed_a.resolve()
    with pytest.raises(RuntimeError, match="cohort execution failed"):
        doomed_b.resolve()
    assert plane.pending_count == 0


def test_late_enqueue_forms_next_batch(params):
    plane = CohortExecutionPlane(MODEL)
    first = plane.enqueue(make_dataset(0), params, CONFIG,
                          np.random.default_rng(70), ("pop", "t", 1))
    first.resolve()
    late = plane.enqueue(make_dataset(1), params, CONFIG,
                         np.random.default_rng(71), ("pop", "t", 1))
    assert plane.pending_count == 1
    late.resolve()
    assert plane.executions == 2


# -- RealTrainer deferral ------------------------------------------------------


def make_checkpoint(params, round_number=1):
    return FLCheckpoint.from_params(params, "pop", "t", round_number)


def test_trainer_defer_matches_inline_train(params):
    """Deferred execution produces the same TrainResult the inline path
    would, given the same RNG stream."""
    checkpoint = make_checkpoint(params)
    inline = RealTrainer(model=MODEL, store=make_store(0))
    rng_inline = np.random.default_rng(80)
    expected = inline.train(make_plan(), checkpoint, 100.0, rng_inline)

    deferred = RealTrainer(model=MODEL, store=make_store(0))
    deferred.attach_cohort_plane(CohortExecutionPlane(MODEL))
    rng = np.random.default_rng(80)
    pending = deferred.defer(make_plan(), checkpoint, 100.0, rng)
    assert isinstance(pending, PendingTrainResult)
    assert pending.num_examples == expected.num_examples
    assert pending.train_compute_units == expected.train_compute_units
    result = pending.resolve()
    assert np.array_equal(result.delta_vector, expected.delta_vector)
    assert result.metrics == expected.metrics
    assert result.upload_nbytes == expected.upload_nbytes
    assert result.weight == expected.weight
    # deferral consumed the identical stream the inline session did
    assert rng.integers(1 << 30) == rng_inline.integers(1 << 30)


def test_defer_returns_none_without_plane(params):
    trainer = RealTrainer(model=MODEL, store=make_store(0))
    assert trainer.defer(make_plan(), make_checkpoint(params), 0.0,
                         np.random.default_rng(0)) is None


def test_defer_returns_none_for_eval_plans(params):
    trainer = RealTrainer(model=MODEL, store=make_store(0, n=30))
    trainer.attach_cohort_plane(CohortExecutionPlane(MODEL))
    plan = make_plan(kind=TaskKind.EVALUATION)
    assert trainer.defer(plan, make_checkpoint(params), 0.0,
                         np.random.default_rng(0)) is None


def test_defer_returns_none_in_functional_math(params):
    trainer = RealTrainer(model=MODEL, store=make_store(0))
    trainer.attach_cohort_plane(CohortExecutionPlane(MODEL))
    with functional_math():
        assert trainer.defer(make_plan(), make_checkpoint(params), 0.0,
                             np.random.default_rng(0)) is None


def test_defer_raises_on_empty_store(params):
    trainer = RealTrainer(model=MODEL, store=ExampleStore())
    trainer.attach_cohort_plane(CohortExecutionPlane(MODEL))
    with pytest.raises(RuntimeError, match="no data"):
        trainer.defer(make_plan(), make_checkpoint(params), 0.0,
                      np.random.default_rng(0))


def test_eval_single_forward_matches_two_pass(params):
    """The eval fast path (loss derived from the logits) is bitwise
    identical to calling model.loss and model.logits separately."""
    store = make_store(0, n=30)
    trainer = RealTrainer(model=MODEL, store=store)
    plan = make_plan(kind=TaskKind.EVALUATION)
    result = trainer.train(plan, make_checkpoint(params), 100.0,
                           np.random.default_rng(0))
    x, y = store.query(plan.device.selection_criteria, 100.0)
    assert result.metrics["eval_loss"] == MODEL.loss(params, x, y)
