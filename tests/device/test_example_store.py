"""Example store: TTL expiry, capacity, plan-criteria queries."""

import numpy as np
import pytest

from repro.core.plan import ExampleSelectionCriteria
from repro.device.example_store import ExampleStore, ExampleStoreRegistry


def filled_store(n=10, ttl=100.0, capacity=100):
    store = ExampleStore("s", capacity=capacity, ttl_s=ttl)
    for i in range(n):
        store.add(np.array([float(i)]), i % 2, timestamp_s=float(i))
    return store


def test_add_and_len():
    assert len(filled_store(5)) == 5


def test_timestamps_must_be_ordered():
    store = ExampleStore()
    store.add([1.0], 0, timestamp_s=10.0)
    with pytest.raises(ValueError, match="timestamp order"):
        store.add([2.0], 1, timestamp_s=5.0)


def test_capacity_evicts_oldest():
    store = ExampleStore("s", capacity=3, ttl_s=None)
    for i in range(5):
        store.add([float(i)], 0, timestamp_s=float(i))
    assert len(store) == 3
    assert store.total_evicted == 2
    x, _ = store.query(ExampleSelectionCriteria(max_examples=10), now_s=10.0)
    assert x.ravel().tolist() == [2.0, 3.0]  # holdout split removed last 20%


def test_ttl_expiry():
    store = filled_store(n=10, ttl=5.0)
    removed = store.expire(now_s=7.0)
    assert removed == 2  # timestamps 0 and 1 are older than 5s at t=7
    assert store.total_expired == 2


def test_query_applies_ttl():
    store = filled_store(n=10, ttl=4.0)
    x, y = store.query(ExampleSelectionCriteria(max_examples=100), now_s=9.0)
    # Only timestamps 5..9 survive; holdout split removes the last 20%.
    assert x.shape[0] == 4


def test_query_max_age_filter():
    store = filled_store(n=10, ttl=None)
    criteria = ExampleSelectionCriteria(max_examples=100, max_age_s=3.0)
    x, _ = store.query(criteria, now_s=9.0)
    # Ages 0..3 -> timestamps 6..9 -> 4 rows -> minus 20% holdout = 3.
    assert x.shape[0] == 3


def test_holdout_and_train_are_disjoint():
    store = filled_store(n=10, ttl=None)
    train_x, _ = store.query(
        ExampleSelectionCriteria(max_examples=100, holdout=False), now_s=20.0
    )
    hold_x, _ = store.query(
        ExampleSelectionCriteria(max_examples=100, holdout=True), now_s=20.0
    )
    train_vals = set(train_x.ravel().tolist())
    hold_vals = set(hold_x.ravel().tolist())
    assert train_vals.isdisjoint(hold_vals)
    assert len(train_vals) + len(hold_vals) == 10


def test_max_examples_keeps_most_recent():
    store = filled_store(n=10, ttl=None)
    x, _ = store.query(ExampleSelectionCriteria(max_examples=3), now_s=20.0)
    assert x.shape[0] == 3
    assert x.ravel().tolist() == [5.0, 6.0, 7.0]


def test_empty_store_query():
    store = ExampleStore()
    x, y = store.query(ExampleSelectionCriteria(max_examples=5), now_s=0.0)
    assert x.shape[0] == 0


def test_registry_register_and_get():
    registry = ExampleStoreRegistry()
    store = ExampleStore("suggestions")
    registry.register("keyboard", store)
    assert registry.get("keyboard", "suggestions") is store
    assert registry.stores_for("keyboard") == [store]
    with pytest.raises(ValueError, match="already registered"):
        registry.register("keyboard", ExampleStore("suggestions"))
    with pytest.raises(KeyError):
        registry.get("other_app")


def test_store_validation():
    with pytest.raises(ValueError):
        ExampleStore(capacity=0)
    with pytest.raises(ValueError):
        ExampleStore(ttl_s=-1.0)
