"""ActorIdleDriver: lazy check-in rescheduling (no cancel+re-push churn)."""

from repro.actors.kernel import Actor, ActorSystem
from repro.actors import messages as msg
from repro.analytics.events import EventLog
from repro.device.actor import DeviceActor, DeviceState
from repro.device.attestation import AttestationService
from repro.device.runtime import ComputeModel, SyntheticTrainer
from repro.device.scheduler import JobSchedule
from repro.sim.event_loop import EventLoop
from repro.sim.network import NetworkModel
from repro.sim.population import DeviceProfile
from repro.sim.rng import RngRegistry


class StubServer(Actor):
    def __init__(self):
        self.checkins = []

    def receive(self, sender, message):
        if isinstance(message, msg.DeviceCheckin):
            self.checkins.append(message)


class AlwaysEligible:
    def is_initially_eligible(self, wall_time_s):
        return True

    def time_until_ineligible(self, wall_time_s, fast=False):
        return 1e9

    def time_until_eligible(self, wall_time_s, fast=False):
        return 1e9


def make_harness():
    loop = EventLoop()
    rngs = RngRegistry(0)
    system = ActorSystem(loop, rngs.stream("lat"), mean_latency_s=0.001)
    server = StubServer()
    server_ref = system.spawn(server, "stub")
    profile = DeviceProfile(
        device_id=1, tz_offset_hours=0.0, speed_factor=1.0, memory_mb=4096,
        os_version=28, runtime_version=10, genuine=True,
    )
    network = NetworkModel(transfer_failure_prob=0.0)
    rng = rngs.stream("dev")
    device = DeviceActor(
        profile=profile,
        availability=AlwaysEligible(),
        network=network,
        conditions=network.sample_conditions(rng),
        selectors=[server_ref],
        population_name="pop",
        trainer=SyntheticTrainer(num_parameters=10),
        compute=ComputeModel(),
        attestation=AttestationService(),
        event_log=EventLog(),
        rng=rng,
        job=JobSchedule(600.0, 0.1),
    )
    system.spawn(device, "device-1")
    return loop, server, device


def test_rescheduling_later_reuses_the_armed_timer():
    loop, server, device = make_harness()
    loop.run(until=1.0)
    heap_before = loop.heap_size
    dead_before = loop.heap_size - len(loop)
    # Pace steering pushes the due time out repeatedly: no cancels, no
    # new heap entries — the armed timer revalidates at fire time.  (The
    # initial staggered check-in is armed somewhere in [1, 600], so every
    # delay here is strictly later than the armed timer.)
    for delay in (1000.0, 1200.0, 1500.0):
        device.idle.schedule_checkin(delay)
    assert loop.heap_size == heap_before
    assert loop.heap_size - len(loop) == dead_before
    # Short of the final due time: the armed (superseded) timers have
    # fired and revalidated without attempting.
    loop.run(until=1500.0)
    assert server.checkins == []
    # At the final due time the one real check-in happens.
    loop.run(until=1600.0)
    assert len(server.checkins) == 1
    assert device.state is DeviceState.WAITING


def test_rescheduling_earlier_arms_once_without_cancelling():
    loop, server, device = make_harness()
    loop.run(until=1.0)
    device.idle.schedule_checkin(900.0)
    dead_before = loop.heap_size - len(loop)
    device.idle.schedule_checkin(20.0)  # earlier: one extra entry, no cancel
    assert loop.heap_size - len(loop) == dead_before
    loop.run(until=200.0)
    assert len(server.checkins) == 1  # fired at the earlier due time
    # The superseded timers fire later and must no-op harmlessly.
    loop.run(until=2000.0)
    assert len(server.checkins) == 1
