"""Remote attestation: genuine devices pass, compromised ones don't."""

from repro.device.attestation import AttestationService


def test_genuine_token_verifies():
    service = AttestationService()
    token = service.issue_token(device_id=7, genuine=True)
    assert service.verify(token)
    assert service.verified_count == 1


def test_forged_token_rejected():
    service = AttestationService()
    token = service.issue_token(device_id=7, genuine=False)
    assert not service.verify(token)
    assert service.rejected_count == 1


def test_token_bound_to_device_id():
    """A genuine token replayed under another device id must fail."""
    service = AttestationService()
    token = service.issue_token(device_id=7, genuine=True)
    import dataclasses

    stolen = dataclasses.replace(token, device_id=8)
    assert not service.verify(stolen)


def test_nonces_are_unique():
    service = AttestationService()
    t1 = service.issue_token(1, True)
    t2 = service.issue_token(1, True)
    assert t1.nonce != t2.nonce
    assert t1.signature != t2.signature


def test_different_platform_secrets_do_not_cross_verify():
    service_a = AttestationService(b"secret-a")
    service_b = AttestationService(b"secret-b")
    token = service_a.issue_token(1, True)
    assert service_a.verify(token)
    assert not service_b.verify(token)
