"""DeviceActor unit tests: the participation pipeline against stub actors."""

import numpy as np
import pytest

from repro.actors.kernel import Actor, ActorSystem
from repro.actors import messages as msg
from repro.analytics.events import EventLog
from repro.analytics.session_shapes import session_shape
from repro.core.checkpoint import FLCheckpoint
from repro.core.config import ClientTrainingConfig, SecAggConfig, TaskKind
from repro.core.pace import ReconnectWindow
from repro.core.plan import generate_plan
from repro.device.actor import DeviceActor, DeviceState
from repro.device.attestation import AttestationService
from repro.device.runtime import ComputeModel, SyntheticTrainer
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.diurnal import AvailabilityProcess, DiurnalModel
from repro.sim.event_loop import EventLoop
from repro.sim.network import NetworkModel
from repro.sim.population import DeviceProfile
from repro.sim.rng import RngRegistry


class StubServer(Actor):
    """Collects whatever devices send; scripted responses."""

    def __init__(self):
        self.checkins: list[msg.DeviceCheckin] = []
        self.reports: list[msg.DeviceReport] = []
        self.drops: list[msg.DeviceDropped] = []
        self.disconnects: list[msg.DeviceDisconnect] = []

    def receive(self, sender, message):
        if isinstance(message, msg.DeviceCheckin):
            self.checkins.append(message)
        elif isinstance(message, msg.DeviceReport):
            self.reports.append(message)
        elif isinstance(message, msg.DeviceDropped):
            self.drops.append(message)
        elif isinstance(message, msg.DeviceDisconnect):
            self.disconnects.append(message)


class AlwaysEligible(AvailabilityProcess):
    """Deterministic availability: eligible forever (or never)."""

    def __init__(self, eligible=True, until=None):
        self._eligible = eligible
        self._until = until

    def is_initially_eligible(self, wall_time_s):
        return self._eligible

    def time_until_ineligible(self, wall_time_s):
        if self._until is not None:
            return max(self._until - wall_time_s, 0.001)
        return 1e9

    def time_until_eligible(self, wall_time_s):
        return 1e9


@pytest.fixture
def harness():
    loop = EventLoop()
    rngs = RngRegistry(0)
    system = ActorSystem(loop, rngs.stream("lat"), mean_latency_s=0.001)
    server = StubServer()
    server_ref = system.spawn(server, "stub")
    return loop, system, server, server_ref, rngs


def make_device(system, server_ref, availability, rngs, event_log=None, **kwargs):
    profile = DeviceProfile(
        device_id=1, tz_offset_hours=0.0, speed_factor=1.0, memory_mb=4096,
        os_version=28, runtime_version=10, genuine=True,
    )
    network = NetworkModel(transfer_failure_prob=0.0)
    rng = rngs.stream("dev")
    device = DeviceActor(
        profile=profile,
        availability=availability,
        network=network,
        conditions=network.sample_conditions(rng),
        selectors=[server_ref],
        population_name="pop",
        trainer=SyntheticTrainer(num_parameters=10),
        compute=ComputeModel(examples_per_second=100.0, setup_overhead_s=1.0),
        attestation=AttestationService(),
        event_log=event_log if event_log is not None else EventLog(),
        rng=rng,
        job=JobSchedule(600.0, 0.1),
        compute_error_prob=0.0,
        **kwargs,
    )
    ref = system.spawn(device, "device-1")
    return device, ref


def make_configure(round_id, agg_ref):
    plan = generate_plan(
        task_id="t", kind=TaskKind.TRAINING,
        client_config=ClientTrainingConfig(), secagg=SecAggConfig(),
        model_nbytes=100,
    )
    model = LogisticRegression(input_dim=2, n_classes=2)
    ckpt = FLCheckpoint.from_params(
        model.init(np.random.default_rng(0)), "pop", "t", 0
    )
    return msg.ConfigureDevice(
        round_id=round_id, task_id="t", plan=plan, checkpoint=ckpt,
        aggregator=agg_ref, report_deadline_s=1e9, participation_cap_s=600.0,
    )


def test_eligible_device_checks_in(harness):
    loop, system, server, server_ref, rngs = harness
    device, _ = make_device(system, server_ref, AlwaysEligible(), rngs)
    loop.run(until=700.0)
    assert len(server.checkins) == 1
    assert device.state is DeviceState.WAITING
    checkin = server.checkins[0]
    assert checkin.population_name == "pop"
    assert checkin.runtime_version == 10


def test_ineligible_device_sleeps(harness):
    loop, system, server, server_ref, rngs = harness
    device, _ = make_device(
        system, server_ref, AlwaysEligible(eligible=False), rngs
    )
    loop.run(until=5000.0)
    assert server.checkins == []
    assert device.state is DeviceState.SLEEPING


def run_until_report(loop, server, deadline=5000.0):
    """Advance in small steps so the ack can be sent before any timeout."""
    while not server.reports and loop.now < deadline:
        loop.run(until=loop.now + 5.0)


def test_full_participation_pipeline(harness):
    loop, system, server, server_ref, rngs = harness
    log = EventLog()
    device, device_ref = make_device(
        system, server_ref, AlwaysEligible(), rngs, event_log=log
    )
    loop.run(until=700.0)
    # Server configures the device for round 5.
    system.tell(device_ref, make_configure(5, server_ref))
    run_until_report(loop, server)
    assert len(server.reports) == 1
    report = server.reports[0]
    assert report.round_id == 5
    assert report.weight > 0
    # Ack the report: session completes with the Table 1 success shape.
    system.tell(device_ref, msg.ReportAck(round_id=5, accepted=True))
    loop.run(until=loop.now + 10.0)
    assert session_shape(log.session(1, 5)) == "-v[]+^"
    assert device.rounds_completed == 1
    assert device.state is DeviceState.IDLE


def test_rejected_report_logs_hash_shape(harness):
    loop, system, server, server_ref, rngs = harness
    log = EventLog()
    device, device_ref = make_device(
        system, server_ref, AlwaysEligible(), rngs, event_log=log
    )
    loop.run(until=700.0)
    system.tell(device_ref, make_configure(3, server_ref))
    run_until_report(loop, server)
    system.tell(device_ref, msg.ReportAck(round_id=3, accepted=False))
    loop.run(until=loop.now + 10.0)
    assert session_shape(log.session(1, 3)) == "-v[]+#"
    assert device.rounds_rejected_report == 1


def test_ack_timeout_treated_as_rejection(harness):
    loop, system, server, server_ref, rngs = harness
    log = EventLog()
    device, device_ref = make_device(
        system, server_ref, AlwaysEligible(), rngs, event_log=log,
        ack_timeout_s=30.0,
    )
    loop.run(until=700.0)
    system.tell(device_ref, make_configure(2, server_ref))
    loop.run(until=2000.0)  # no ack ever arrives
    assert session_shape(log.session(1, 2)) == "-v[]+#"
    # Finished (possibly already re-checked-in for the next round).
    assert device.state in (DeviceState.IDLE, DeviceState.WAITING)


def test_interruption_mid_training(harness):
    loop, system, server, server_ref, rngs = harness
    log = EventLog()
    # Eligibility vanishes shortly after training starts.
    device, device_ref = make_device(
        system, server_ref, AlwaysEligible(until=710.0), rngs, event_log=log
    )
    loop.run(until=700.0)
    assert device.state is DeviceState.WAITING
    # Slow the trainer down so the interruption lands mid-round.
    device.trainer = SyntheticTrainer(num_parameters=10, mean_examples=5000.0)
    system.tell(device_ref, make_configure(4, server_ref))
    loop.run(until=5000.0)
    shape = session_shape(log.session(1, 4))
    assert shape == "-v[!"
    assert server.drops and server.drops[0].reason == "eligibility_change"
    assert device.state is DeviceState.SLEEPING
    assert device.rounds_interrupted == 1


def test_checkin_rejection_respects_pace_window(harness):
    loop, system, server, server_ref, rngs = harness
    device, device_ref = make_device(system, server_ref, AlwaysEligible(), rngs)
    loop.run(until=700.0)
    first_checkins = len(server.checkins)
    window = ReconnectWindow(loop.now + 500.0, loop.now + 510.0)
    system.tell(device_ref, msg.CheckinRejected(window=window, reason="full"))
    loop.run(until=loop.now + 400.0)
    assert len(server.checkins) == first_checkins  # still waiting
    loop.run(until=loop.now + 200.0)
    assert len(server.checkins) == first_checkins + 1  # retried in window


def test_waiting_device_disconnects_when_ineligible(harness):
    loop, system, server, server_ref, rngs = harness
    device, _ = make_device(
        system, server_ref, AlwaysEligible(until=800.0), rngs
    )
    loop.run(until=700.0)
    assert device.state is DeviceState.WAITING
    loop.run(until=900.0)
    assert device.state is DeviceState.SLEEPING
    assert len(server.disconnects) == 1


def test_download_failure_logs_error(harness):
    loop, system, server, server_ref, rngs = harness
    log = EventLog()
    device, device_ref = make_device(
        system, server_ref, AlwaysEligible(), rngs, event_log=log
    )
    device.network = NetworkModel(transfer_failure_prob=1.0)
    loop.run(until=700.0)
    system.tell(device_ref, make_configure(6, server_ref))
    loop.run(until=1500.0)
    assert session_shape(log.session(1, 6)) == "-*"
    assert server.drops and server.drops[0].reason == "network_download"
