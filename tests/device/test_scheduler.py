"""Multi-tenant worker queue and job schedule."""

import numpy as np
import pytest

from repro.device.scheduler import JobSchedule, MultiTenantScheduler


def test_fifo_order():
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.enqueue("b")
    assert scheduler.try_start() == "a"
    scheduler.finish("a")
    assert scheduler.try_start() == "b"


def test_one_session_at_a_time():
    """Sec. 11: 'we avoid running training sessions on-device in parallel'."""
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.enqueue("b")
    assert scheduler.try_start() == "a"
    assert scheduler.try_start() is None
    scheduler.finish("a")
    assert scheduler.try_start() == "b"


def test_enqueue_coalesces_duplicates():
    scheduler = MultiTenantScheduler()
    assert scheduler.enqueue("a")
    assert not scheduler.enqueue("a")
    assert scheduler.try_start() == "a"
    assert not scheduler.enqueue("a")  # running -> coalesced
    scheduler.finish("a")
    assert scheduler.enqueue("a")


def test_finish_wrong_population_raises():
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.try_start()
    with pytest.raises(RuntimeError):
        scheduler.finish("b")


def test_abort_clears_running():
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.try_start()
    assert scheduler.abort() == "a"
    assert scheduler.running is None
    assert scheduler.sessions_completed == 0


def test_job_schedule_jitter_bounds(rng):
    schedule = JobSchedule(base_interval_s=100.0, jitter_fraction=0.2)
    delays = [schedule.next_delay(rng) for _ in range(200)]
    assert all(80.0 <= d <= 120.0 for d in delays)
    assert np.std(delays) > 0


def test_job_schedule_validation():
    with pytest.raises(ValueError):
        JobSchedule(base_interval_s=0)
    with pytest.raises(ValueError):
        JobSchedule(jitter_fraction=1.0)
