"""Multi-tenant worker queue and job schedule."""

import numpy as np
import pytest

from repro.device.scheduler import JobSchedule, MultiTenantScheduler


def test_fifo_order():
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.enqueue("b")
    assert scheduler.try_start() == "a"
    scheduler.finish("a")
    assert scheduler.try_start() == "b"


def test_one_session_at_a_time():
    """Sec. 11: 'we avoid running training sessions on-device in parallel'."""
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.enqueue("b")
    assert scheduler.try_start() == "a"
    assert scheduler.try_start() is None
    scheduler.finish("a")
    assert scheduler.try_start() == "b"


def test_enqueue_coalesces_duplicates():
    scheduler = MultiTenantScheduler()
    assert scheduler.enqueue("a")
    assert not scheduler.enqueue("a")
    assert scheduler.try_start() == "a"
    assert not scheduler.enqueue("a")  # running -> coalesced
    scheduler.finish("a")
    assert scheduler.enqueue("a")


def test_finish_wrong_population_raises():
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.try_start()
    with pytest.raises(RuntimeError):
        scheduler.finish("b")


def test_abort_clears_running():
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.try_start()
    assert scheduler.abort() == "a"
    assert scheduler.running is None
    assert scheduler.sessions_completed == 0


def test_policy_validation():
    with pytest.raises(ValueError, match="policy"):
        MultiTenantScheduler(policy="priority")
    assert MultiTenantScheduler().policy == "fifo"
    assert MultiTenantScheduler(policy="fair_share").policy == "fair_share"


def test_remove_drops_queued_request():
    scheduler = MultiTenantScheduler()
    scheduler.enqueue("a")
    scheduler.enqueue("b")
    assert scheduler.remove("b")
    assert not scheduler.remove("b")  # idempotent
    assert not scheduler.is_queued("b")
    assert scheduler.try_start() == "a"
    scheduler.finish("a")
    assert scheduler.try_start() is None


def _burst_pattern(policy: str, cycles: int = 6) -> list[str]:
    """One device's runtime re-files both tenants' session requests each
    eligibility window — the chatty tenant always first — and each window
    fits exactly one session, after which the window closes and the
    unserved request expires (constraint-based job cancellation)."""
    scheduler = MultiTenantScheduler(policy=policy)
    started = []
    for _ in range(cycles):
        scheduler.enqueue("chatty")
        scheduler.enqueue("quiet")
        population = scheduler.try_start()
        assert population is not None
        started.append(population)
        scheduler.finish(population)
        scheduler.remove("chatty")
        scheduler.remove("quiet")
    return started


def test_fifo_burst_leader_starves_quiet_tenant():
    """The regression fair_share exists for: under FIFO, whichever tenant
    files first leads every burst, and with per-window request expiry the
    second tenant never runs at all."""
    assert _burst_pattern("fifo") == ["chatty"] * 6


def test_fair_share_round_robins_across_bursts():
    started = _burst_pattern("fair_share")
    assert started.count("chatty") == 3
    assert started.count("quiet") == 3
    # Strict alternation after the first pick: least-recently-started wins.
    assert started[:4] == ["chatty", "quiet", "chatty", "quiet"]


def test_fair_share_never_started_wins_in_enqueue_order():
    scheduler = MultiTenantScheduler(policy="fair_share")
    scheduler.enqueue("a")
    scheduler.enqueue("b")
    assert scheduler.try_start() == "a"
    scheduler.finish("a")
    scheduler.enqueue("a")
    scheduler.enqueue("c")  # never started -> beats a's recency
    assert scheduler.try_start() == "b"
    scheduler.finish("b")
    assert scheduler.try_start() == "c"
    scheduler.finish("c")
    assert scheduler.try_start() == "a"


def test_fair_share_expiry_does_not_reset_recency():
    scheduler = MultiTenantScheduler(policy="fair_share")
    scheduler.enqueue("chatty")
    assert scheduler.try_start() == "chatty"
    scheduler.finish("chatty")
    # The chatty tenant's unserved re-file expires with the window...
    scheduler.enqueue("chatty")
    scheduler.remove("chatty")
    # ...but it does not regain never-started priority over a first-timer.
    scheduler.enqueue("chatty")
    scheduler.enqueue("quiet")
    assert scheduler.try_start() == "quiet"


def test_job_schedule_jitter_bounds(rng):
    schedule = JobSchedule(base_interval_s=100.0, jitter_fraction=0.2)
    delays = [schedule.next_delay(rng) for _ in range(200)]
    assert all(80.0 <= d <= 120.0 for d in delays)
    assert np.std(delays) > 0


def test_job_schedule_validation():
    with pytest.raises(ValueError):
        JobSchedule(base_interval_s=0)
    with pytest.raises(ValueError):
        JobSchedule(jitter_fraction=1.0)
