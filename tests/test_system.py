"""FLSystem end-to-end: multi-task scheduling, SecAgg rounds, real training."""

import numpy as np
import pytest

from repro import (
    ClientTrainingConfig,
    FLSystem,
    FLSystemConfig,
    RoundConfig,
    SecAggConfig,
    TaskConfig,
    TaskKind,
)
from repro.core.task import SchedulingStrategy
from repro.device.runtime import RealTrainer
from repro.device.example_store import ExampleStore
from repro.device.scheduler import JobSchedule
from repro.nn.models import LogisticRegression
from repro.sim.population import PopulationConfig


def system_config(seed=5, devices=250):
    return FLSystemConfig(
        seed=seed,
        population=PopulationConfig(num_devices=devices),
        num_selectors=2,
        job=JobSchedule(1200.0, 0.5),
    )


def round_config(target=12):
    return RoundConfig(
        target_participants=target, selection_timeout_s=60, reporting_timeout_s=150
    )


def test_multi_task_alternates_train_and_eval():
    system = FLSystem(system_config())
    train = TaskConfig(
        task_id="pop/train", population_name="pop", round_config=round_config()
    )
    evaluate = TaskConfig(
        task_id="pop/eval",
        population_name="pop",
        kind=TaskKind.EVALUATION,
        round_config=round_config(),
    )
    model = LogisticRegression(input_dim=4, n_classes=2)
    system.deploy(
        [train, evaluate],
        model.init(np.random.default_rng(0)),
        strategy=SchedulingStrategy.ALTERNATE_TRAIN_EVAL,
    )
    system.run_for(3 * 3600)
    task_ids = [r.task_id for r in system.round_results]
    assert "pop/train" in task_ids
    assert "pop/eval" in task_ids
    # Strict alternation at the scheduler level.
    started_pairs = list(zip(task_ids, task_ids[1:]))
    alternating = sum(a != b for a, b in started_pairs)
    assert alternating >= len(started_pairs) * 0.8


def test_secure_aggregation_rounds_commit():
    """SecAgg through the actor stack: rounds commit and the model moves."""
    system = FLSystem(system_config(seed=9))
    task = TaskConfig(
        task_id="pop/secagg",
        population_name="pop",
        round_config=round_config(target=10),
        secagg=SecAggConfig(enabled=True, group_size=8, threshold_fraction=0.6),
    )
    model = LogisticRegression(input_dim=3, n_classes=2)
    initial = model.init(np.random.default_rng(1))
    system.deploy([task], initial)
    system.run_for(2 * 3600)
    committed = system.committed_rounds
    assert len(committed) >= 3
    assert not system.global_model().allclose(initial)


def test_secagg_quantization_error_is_small():
    """The securely-aggregated model must closely track what plain
    aggregation would produce (quantization error only)."""
    # Run two systems with identical seeds, one secure, one plain.
    results = {}
    for secure in (False, True):
        system = FLSystem(system_config(seed=21))
        task = TaskConfig(
            task_id="pop/t",
            population_name="pop",
            round_config=round_config(target=10),
            secagg=SecAggConfig(
                enabled=secure, group_size=8, threshold_fraction=0.6
            ),
        )
        model = LogisticRegression(input_dim=3, n_classes=2)
        initial = model.init(np.random.default_rng(1))
        system.deploy([task], initial)
        system.run_for(1800)
        if system.committed_rounds:
            first = system.store.history("pop")[1]
            results[secure] = first.to_params().to_vector()
    if len(results) == 2:
        # Same seed -> same first-round cohort; only quantization differs.
        diff = np.abs(results[True] - results[False]).max()
        assert diff < 1e-3


def test_real_trainer_fleet_learns():
    """Devices hold real data in example stores; the global model's loss
    on a reference set drops across committed rounds."""
    rng = np.random.default_rng(3)
    model = LogisticRegression(input_dim=4, n_classes=3)
    w_true = rng.normal(size=(4, 3))
    ref_x = rng.normal(size=(400, 4))
    ref_y = (ref_x @ w_true).argmax(axis=1)

    def trainer_factory(profile):
        store = ExampleStore(ttl_s=None)
        n = 40
        x = rng.normal(size=(n, 4))
        y = (x @ w_true).argmax(axis=1)
        store.add_batch(x, y, timestamp_s=0.0)
        return RealTrainer(model=model, store=store)

    system = FLSystem(system_config(seed=13, devices=200))
    task = TaskConfig(
        task_id="pop/real",
        population_name="pop",
        round_config=round_config(target=10),
        client_config=ClientTrainingConfig(
            epochs=1, batch_size=16, learning_rate=0.5
        ),
    )
    initial = model.init(np.random.default_rng(0))
    system.deploy([task], initial, trainer_factory=trainer_factory)
    system.run_for(4 * 3600)
    assert len(system.committed_rounds) >= 5
    loss_before = model.loss(initial, ref_x, ref_y)
    loss_after = model.loss(system.global_model(), ref_x, ref_y)
    assert loss_after < 0.7 * loss_before


def test_compromised_devices_never_participate():
    config = system_config(seed=17)
    config.population = PopulationConfig(num_devices=200, compromised_fraction=0.2)
    system = FLSystem(config)
    task = TaskConfig(
        task_id="pop/t", population_name="pop", round_config=round_config()
    )
    model = LogisticRegression(input_dim=3, n_classes=2)
    system.deploy([task], model.init(np.random.default_rng(0)))
    system.run_for(2 * 3600)
    compromised_ids = {p.device_id for p in system.profiles if not p.genuine}
    assert compromised_ids  # the scenario is non-trivial
    for result in system.round_results:
        participant_ids = {r.device_id for r in result.participant_records}
        assert participant_ids.isdisjoint(compromised_ids)
    assert system.attestation.rejected_count > 0


def test_device_health_telemetry_aggregates():
    """Sec. 5 health logging: training time, sessions, errors, OS split."""
    system = FLSystem(system_config(seed=29))
    task = TaskConfig(
        task_id="pop/t", population_name="pop", round_config=round_config()
    )
    model = LogisticRegression(input_dim=3, n_classes=2)
    system.deploy([task], model.init(np.random.default_rng(0)))
    system.run_for(2 * 3600)
    health = system.device_health_summary()
    assert health["sessions"]["count"] == len(system.devices)
    assert health["train_seconds"]["max"] > 0
    assert sum(health["sessions_by_os_version"].values()) > 0
    # Error reasons, when present, come from the known taxonomy.
    known = {
        "eligibility_change", "network_download", "network_upload",
        "compute_error", "gone_before_configuration",
    }
    assert set(health["errors_by_reason"]) <= known


def test_run_before_deploy_rejected():
    system = FLSystem(system_config())
    with pytest.raises(RuntimeError, match="deploy"):
        system.run_for(10.0)


def test_mixed_population_tasks_rejected():
    system = FLSystem(system_config())
    model = LogisticRegression(input_dim=2, n_classes=2)
    tasks = [
        TaskConfig(task_id="a", population_name="p1"),
        TaskConfig(task_id="b", population_name="p2"),
    ]
    with pytest.raises(ValueError, match="same population"):
        system.deploy(tasks, model.init(np.random.default_rng(0)))
